//! B-List-Direction and B-List-Target (§4.3).

use esp_trace::{Instr, InstrKind};
use esp_types::Addr;

/// One decoded branch record from the B-lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchRecord {
    /// The branch's instruction address.
    pub pc: Addr,
    /// The recorded direction (always true for unconditional branches).
    pub taken: bool,
    /// Whether the branch was indirect.
    pub indirect: bool,
    /// The taken-path target available for replay. `None` for indirect
    /// branches whose target did not fit in B-List-Target.
    pub target: Option<Addr>,
    /// Retired instruction count at the branch (from the header entries).
    pub icount: u64,
    /// The branch flavour, so replay can reconstruct the micro-op.
    pub kind: RecordKind,
}

/// The branch flavour stored in a [`BranchRecord`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A conditional direct branch.
    Cond,
    /// An indirect branch.
    Indirect,
    /// An indirect call.
    IndirectCall,
    /// A direct call.
    Call,
    /// A return (recorded for spacing; replay skips it).
    Return,
}

impl BranchRecord {
    /// Reconstructs a micro-op suitable for
    /// `BranchPredictor::train_ahead`-style replay. Returns `None` when
    /// the record cannot be replayed (an indirect branch whose target was
    /// not captured, or a return).
    pub fn to_instr(&self) -> Option<Instr> {
        match self.kind {
            RecordKind::Cond => Some(Instr::cond_branch(
                self.pc,
                self.taken,
                self.target.unwrap_or(Addr::NULL),
            )),
            RecordKind::Indirect => self.target.map(|t| Instr::indirect(self.pc, t)),
            RecordKind::IndirectCall => self.target.map(|t| Instr::indirect_call(self.pc, t)),
            RecordKind::Call => self.target.map(|t| Instr::call(self.pc, t)),
            RecordKind::Return => None,
        }
    }
}

/// Bits per B-List-Direction entry: 4 (Δpc) + 1 (direction) + 1 (indirect).
const DIR_ENTRY_BITS: usize = 6;
/// Every `GROUP` entries, the first two entries are instruction-count
/// headers rather than branches.
const GROUP: usize = 30;
const HEADER_ENTRIES: usize = 2;
/// Bits per B-List-Target entry: 16 (target offset) + 1 (escape).
const TGT_ENTRY_BITS: usize = 17;
/// Δpc range encodable in 4 bits (instruction units).
const DIR_DELTA_MAX: u64 = 15;
/// Target-offset range encodable in 16 bits (signed, byte units).
const TGT_OFFSET_MIN: i64 = -32768;
const TGT_OFFSET_MAX: i64 = 32767;

/// The paired B-List-Direction / B-List-Target of one ESP mode.
///
/// Direction entries are 6 bits with periodic instruction-count headers;
/// indirect-branch targets go to the separate, much smaller target list
/// (41 B for ESP-1), so indirect replay coverage runs out long before
/// direction coverage — exactly the asymmetry Fig. 8 builds in.
///
/// # Examples
///
/// ```
/// use esp_lists::BList;
/// use esp_trace::Instr;
/// use esp_types::Addr;
///
/// let mut b = BList::new(566, 41);
/// let br = Instr::cond_branch(Addr::new(0x100), true, Addr::new(0x40));
/// assert!(b.record(&br, 10));
/// assert_eq!(b.records().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BList {
    dir_capacity_bits: usize,
    dir_used_bits: usize,
    tgt_capacity_bits: usize,
    tgt_used_bits: usize,
    records: Vec<BranchRecord>,
    entries_written: usize,
    full: bool,
    last_pc: Option<Addr>,
}

impl BList {
    /// Creates an empty pair with the given byte capacities.
    pub fn new(dir_bytes: usize, tgt_bytes: usize) -> Self {
        BList {
            dir_capacity_bits: dir_bytes * 8,
            dir_used_bits: 0,
            tgt_capacity_bits: tgt_bytes * 8,
            tgt_used_bits: 0,
            records: Vec::new(),
            entries_written: 0,
            full: false,
            last_pc: None,
        }
    }

    fn dir_entry_cost(&mut self, pc: Addr) -> usize {
        let mut cost = 0;
        // Periodic headers: the first two entries of every group of 30.
        if self.entries_written.is_multiple_of(GROUP) {
            cost += HEADER_ENTRIES * DIR_ENTRY_BITS;
            self.entries_written += HEADER_ENTRIES;
        }
        // Far branches need an extra spacing entry (escape).
        let delta = match self.last_pc {
            Some(prev) => (pc.as_u64().abs_diff(prev.as_u64())) / 4,
            None => 0,
        };
        if delta > DIR_DELTA_MAX {
            cost += DIR_ENTRY_BITS;
            self.entries_written += 1;
        }
        cost += DIR_ENTRY_BITS;
        self.entries_written += 1;
        cost
    }

    /// Records a retiring branch from pre-execution. Returns `false` once
    /// B-List-Direction is full (the branch is dropped).
    ///
    /// # Panics
    ///
    /// Panics if `instr` is not a branch.
    pub fn record(&mut self, instr: &Instr, icount: u64) -> bool {
        if self.full {
            return false;
        }
        let entries_before = self.entries_written;
        let cost = self.dir_entry_cost(instr.pc);
        if self.dir_used_bits + cost > self.dir_capacity_bits {
            self.entries_written = entries_before;
            self.full = true;
            return false;
        }
        self.dir_used_bits += cost;
        self.last_pc = Some(instr.pc);

        let (kind, taken, target) = match instr.kind {
            InstrKind::CondBranch { taken, target } => {
                (RecordKind::Cond, taken, taken.then_some(target))
            }
            InstrKind::IndirectBranch { target } => {
                // Targets compete for the tiny B-List-Target.
                let stored = self.try_store_target(instr.pc, target);
                (RecordKind::Indirect, true, stored.then_some(target))
            }
            InstrKind::IndirectCall { target } => {
                let stored = self.try_store_target(instr.pc, target);
                (RecordKind::IndirectCall, true, stored.then_some(target))
            }
            InstrKind::Call { target } => (RecordKind::Call, true, Some(target)),
            InstrKind::Return { target } => (RecordKind::Return, true, Some(target)),
            _ => panic!("BList::record called on a non-branch: {instr:?}"),
        };
        self.records.push(BranchRecord {
            pc: instr.pc,
            taken,
            indirect: matches!(kind, RecordKind::Indirect | RecordKind::IndirectCall),
            target,
            icount,
            kind,
        });
        true
    }

    fn try_store_target(&mut self, pc: Addr, target: Addr) -> bool {
        let offset = target.as_u64() as i64 - pc.as_u64() as i64;
        let cost = if (TGT_OFFSET_MIN..=TGT_OFFSET_MAX).contains(&offset) {
            TGT_ENTRY_BITS
        } else {
            3 * TGT_ENTRY_BITS
        };
        if self.tgt_used_bits + cost > self.tgt_capacity_bits {
            return false;
        }
        self.tgt_used_bits += cost;
        true
    }

    /// The decoded records, oldest first.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Whether direction recording has stopped.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Bits used in B-List-Direction.
    pub fn dir_used_bits(&self) -> usize {
        self.dir_used_bits
    }

    /// Bits used in B-List-Target.
    pub fn tgt_used_bits(&self) -> usize {
        self.tgt_used_bits
    }

    /// Number of decoded branch records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no branches have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Event promotion: re-homes into the (larger) ESP-1 capacities.
    pub fn promoted(self, dir_bytes: usize, tgt_bytes: usize) -> BList {
        let dir_capacity_bits = dir_bytes * 8;
        BList {
            dir_capacity_bits,
            tgt_capacity_bits: tgt_bytes * 8,
            full: self.dir_used_bits >= dir_capacity_bits,
            ..self
        }
    }

    /// Empties both lists.
    pub fn clear(&mut self) {
        self.dir_used_bits = 0;
        self.tgt_used_bits = 0;
        self.records.clear();
        self.entries_written = 0;
        self.full = false;
        self.last_pc = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(pc: u64, taken: bool) -> Instr {
        Instr::cond_branch(Addr::new(pc), taken, Addr::new(pc + 0x20))
    }

    #[test]
    fn records_and_decodes_conditionals() {
        let mut b = BList::new(566, 41);
        assert!(b.record(&cond(0x100, true), 5));
        assert!(b.record(&cond(0x110, false), 9));
        let r = b.records();
        assert_eq!(r.len(), 2);
        assert!(r[0].taken);
        assert_eq!(r[0].icount, 5);
        assert!(!r[1].taken);
        assert_eq!(r[1].target, None, "not-taken branches carry no target");
        assert_eq!(r[0].to_instr(), Some(cond(0x100, true)));
    }

    #[test]
    fn direction_capacity_with_headers() {
        // 30 B = 240 bits = 40 entries. Groups of 30 entries start with 2
        // headers, so the first group stores 28 branches in 180 bits, the
        // next group starts with headers again: 240-180=60 bits = 10
        // entries → 2 headers + 8 branches = 36 branches total.
        let mut b = BList::new(30, 41);
        let mut n = 0;
        while b.record(&cond(0x100 + n * 8, true), n) {
            n += 1;
        }
        assert_eq!(n, 36);
        assert!(b.is_full());
    }

    #[test]
    fn far_branches_cost_extra_entries() {
        let mut b = BList::new(566, 41);
        b.record(&cond(0x100, true), 0);
        let used = b.dir_used_bits();
        // Next branch 17 instructions away: needs an escape entry.
        b.record(&cond(0x100 + 17 * 4, true), 20);
        assert_eq!(b.dir_used_bits() - used, 2 * 6);
        let used = b.dir_used_bits();
        // Close branch: single entry.
        b.record(&cond(0x100 + 17 * 4 + 8, true), 22);
        assert_eq!(b.dir_used_bits() - used, 6);
    }

    #[test]
    fn indirect_targets_gated_by_target_list() {
        // 6 B of target storage = 48 bits = 2 near-target entries.
        let mut b = BList::new(566, 6);
        for i in 0..4u64 {
            let ins = Instr::indirect(Addr::new(0x1000 + i * 64), Addr::new(0x1200 + i * 64));
            assert!(b.record(&ins, i));
        }
        let with_target = b.records().iter().filter(|r| r.target.is_some()).count();
        assert_eq!(with_target, 2);
        // Directions are still recorded for all four.
        assert_eq!(b.len(), 4);
        // Records without targets cannot be replayed.
        assert!(b.records()[3].to_instr().is_none());
    }

    #[test]
    fn far_indirect_targets_cost_three_entries() {
        let mut b = BList::new(566, 7); // 56 bits
        let far = Instr::indirect(Addr::new(0x1000), Addr::new(0x80_0000));
        assert!(b.record(&far, 0));
        assert_eq!(b.tgt_used_bits(), 51);
        // No room for another escape (51 + 17 > 56 even for a near one? 68 > 56).
        let near = Instr::indirect(Addr::new(0x1040), Addr::new(0x1100));
        assert!(b.record(&near, 1));
        assert_eq!(b.records()[1].target, None);
    }

    #[test]
    fn calls_and_returns() {
        let mut b = BList::new(566, 41);
        let call = Instr::call(Addr::new(0x100), Addr::new(0x4000));
        let ret = Instr::ret(Addr::new(0x4010), Addr::new(0x104));
        assert!(b.record(&call, 0));
        assert!(b.record(&ret, 5));
        assert_eq!(b.records()[0].kind, RecordKind::Call);
        assert!(b.records()[0].to_instr().is_some());
        assert_eq!(b.records()[1].kind, RecordKind::Return);
        assert!(b.records()[1].to_instr().is_none(), "returns are not replayed");
    }

    #[test]
    fn promotion_reopens_a_full_list() {
        let mut b = BList::new(30, 6);
        let mut n = 0;
        while b.record(&cond(0x100 + n * 8, true), n) {
            n += 1;
        }
        assert!(b.is_full());
        let len = b.len();
        let mut big = b.promoted(566, 41);
        assert!(!big.is_full());
        assert!(big.record(&cond(0x9000, true), 400));
        assert_eq!(big.len(), len + 1);
    }

    #[test]
    fn clear_resets() {
        let mut b = BList::new(566, 41);
        b.record(&cond(0x100, true), 0);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dir_used_bits(), 0);
        assert_eq!(b.tgt_used_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn non_branch_panics() {
        let mut b = BList::new(566, 41);
        b.record(&Instr::alu(Addr::new(0)), 0);
    }
}
