//! The I-list / D-list: compressed cache-block address + timestamp lists.

use esp_types::LineAddr;

/// One decoded list record: a run of `1 + extra` contiguous cache blocks
/// starting at `line`, first touched `icount` instructions into the event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrRecord {
    /// First cache block of the run.
    pub line: LineAddr,
    /// Number of contiguous blocks following `line` (the 3-bit field).
    pub extra: u8,
    /// Instructions executed from the beginning of the event before the
    /// run's first access.
    pub icount: u64,
}

impl AddrRecord {
    /// Total blocks covered by the record.
    pub fn run_len(&self) -> u8 {
        1 + self.extra
    }

    /// Iterates over the covered block addresses.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        (0..self.run_len() as i64).map(move |i| self.line.offset(i))
    }
}

/// Bits per base entry: 8 (Δline) + 3 (run) + 7 (Δicount) + 1 (escape).
const ENTRY_BITS: usize = 19;
/// Maximum run extension encodable in the 3-bit field.
const MAX_RUN: u8 = 7;
/// Signed range of the 8-bit line delta.
const DELTA_MIN: i64 = -128;
const DELTA_MAX: i64 = 127;
/// Saturation point of the 7-bit instruction-count delta.
const ICOUNT_DELTA_MAX: u64 = 127;

/// A compressed circular list of cache-block addresses with timestamps —
/// the hardware I-list or D-list of one ESP mode (§4.2).
///
/// Recording stops when the capacity is exhausted ("for long events, ESP
/// would initially use the lists issuing accurate prefetch requests, but
/// later has to rely on the baseline prefetcher"). The decoded records are
/// retained for replay; the bit accounting decides *when recording stops*,
/// which is the architecturally meaningful effect of the encoding.
///
/// # Examples
///
/// ```
/// use esp_lists::AddrList;
/// use esp_types::LineAddr;
///
/// let mut l = AddrList::new(68); // the ESP-2 I-list: 544 bits
/// let mut recorded = 0;
/// let mut line = 0u64;
/// while l.record(LineAddr::new(line), line * 20) {
///     recorded += 1;
///     line += 10; // never contiguous, one entry each
/// }
/// // The first entry spells out a full address (3 x 19 bits); the other
/// // 25 are 19-bit delta entries: 57 + 25*19 = 532 <= 544.
/// assert_eq!(recorded, 26);
/// assert!(l.is_full());
/// ```
#[derive(Clone, Debug)]
pub struct AddrList {
    capacity_bits: usize,
    used_bits: usize,
    records: Vec<AddrRecord>,
    full: bool,
    last_line: Option<LineAddr>,
    last_icount: u64,
}

impl AddrList {
    /// Creates an empty list with `capacity_bytes` of storage.
    pub fn new(capacity_bytes: usize) -> Self {
        AddrList {
            capacity_bits: capacity_bytes * 8,
            used_bits: 0,
            records: Vec::new(),
            full: false,
            last_line: None,
            last_icount: 0,
        }
    }

    /// Records an access to `line` at event-relative instruction count
    /// `icount`. Returns `false` once the list is full (the access is
    /// dropped, as the hardware would).
    ///
    /// Consecutive accesses extending a contiguous run are folded into the
    /// previous entry's 3-bit run field at zero bit cost; re-touches of
    /// the previous block are ignored.
    pub fn record(&mut self, line: LineAddr, icount: u64) -> bool {
        if self.full {
            return false;
        }
        // Run folding against the most recent record.
        if let Some(last) = self.records.last_mut() {
            let run_end = last.line.offset(last.extra as i64);
            if line == run_end {
                return true; // re-touch of the current block
            }
            if line == run_end.next() && last.extra < MAX_RUN {
                last.extra += 1;
                self.last_line = Some(line);
                self.last_icount = icount;
                return true;
            }
        }
        let delta = match self.last_line {
            Some(prev) => line.as_u64() as i64 - prev.as_u64() as i64,
            None => 0, // first entry anchors the stream
        };
        let cost = if (DELTA_MIN..=DELTA_MAX).contains(&delta) && self.last_line.is_some() {
            ENTRY_BITS
        } else {
            // Escape: the entry plus two extension entries spell out the
            // complete 26-bit block address.
            3 * ENTRY_BITS
        };
        if self.used_bits + cost > self.capacity_bits {
            self.full = true;
            return false;
        }
        self.used_bits += cost;
        let _encoded_icount_delta = (icount - self.last_icount).min(ICOUNT_DELTA_MAX);
        self.records.push(AddrRecord { line, extra: 0, icount });
        self.last_line = Some(line);
        self.last_icount = icount;
        true
    }

    /// The decoded records, oldest first.
    pub fn records(&self) -> &[AddrRecord] {
        &self.records
    }

    /// Whether recording has stopped.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Bits consumed so far.
    pub fn used_bits(&self) -> usize {
        self.used_bits
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> usize {
        self.capacity_bits
    }

    /// Number of decoded records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total cache blocks covered (records × run lengths).
    pub fn covered_blocks(&self) -> u64 {
        self.records.iter().map(|r| r.run_len() as u64).sum()
    }

    /// Event promotion (§4.2): re-homes this list's contents into a list
    /// of `capacity_bytes` (the larger ESP-1 storage), preserving records
    /// and bit usage so recording can continue where it stopped. The
    /// `full` flag is re-evaluated against the new capacity.
    pub fn promoted(self, capacity_bytes: usize) -> AddrList {
        let capacity_bits = capacity_bytes * 8;
        AddrList {
            capacity_bits,
            full: self.used_bits >= capacity_bits,
            ..self
        }
    }

    /// Empties the list (hardware reuse for a new event).
    pub fn clear(&mut self) {
        self.used_bits = 0;
        self.records.clear();
        self.full = false;
        self.last_line = None;
        self.last_icount = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_runs_fold() {
        let mut l = AddrList::new(499);
        for i in 0..8 {
            assert!(l.record(LineAddr::new(100 + i), i * 16));
        }
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].run_len(), 8);
        // The ninth contiguous block exceeds the 3-bit field: new entry.
        assert!(l.record(LineAddr::new(108), 200));
        assert_eq!(l.len(), 2);
        // First entry is a full-address escape (57 bits), second is a
        // plain delta entry.
        assert_eq!(l.used_bits(), 57 + 19);
    }

    #[test]
    fn retouch_is_free() {
        let mut l = AddrList::new(68);
        l.record(LineAddr::new(5), 0);
        let used = l.used_bits();
        l.record(LineAddr::new(5), 10);
        l.record(LineAddr::new(5), 20);
        assert_eq!(l.used_bits(), used);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn near_jumps_cost_one_entry_far_jumps_three() {
        let mut l = AddrList::new(499);
        l.record(LineAddr::new(1000), 0); // first entry: full address
        assert_eq!(l.used_bits(), 57);
        l.record(LineAddr::new(1100), 10); // +100: near
        assert_eq!(l.used_bits(), 57 + 19);
        l.record(LineAddr::new(5000), 20); // +3900: far
        assert_eq!(l.used_bits(), 57 + 19 + 57);
        l.record(LineAddr::new(4900), 30); // -100: near (signed delta)
        assert_eq!(l.used_bits(), 57 + 19 + 57 + 19);
    }

    #[test]
    fn capacity_stops_recording() {
        // 68 B = 544 bits = 28 base entries.
        let mut l = AddrList::new(68);
        let mut n = 0;
        let mut line = 0u64;
        while l.record(LineAddr::new(line), n * 30) {
            n += 1;
            line += 20;
        }
        assert_eq!(n, 26);
        assert!(l.is_full());
        // Further records are rejected without changing state.
        assert!(!l.record(LineAddr::new(line + 20), 99999));
        assert_eq!(l.len(), 26);
    }

    #[test]
    fn run_folding_still_works_when_full_flagged_later() {
        let mut l = AddrList::new(68);
        let mut line = 0u64;
        while l.record(LineAddr::new(line), 0) {
            line += 20;
        }
        assert!(l.is_full());
        assert!(!l.record(LineAddr::new(line - 19), 0));
    }

    #[test]
    fn records_keep_exact_icounts() {
        let mut l = AddrList::new(499);
        l.record(LineAddr::new(0), 0);
        l.record(LineAddr::new(50), 5_000); // delta far beyond 127
        assert_eq!(l.records()[1].icount, 5_000);
    }

    #[test]
    fn promotion_preserves_contents_and_allows_growth() {
        let mut l = AddrList::new(68);
        let mut line = 0u64;
        while l.record(LineAddr::new(line), 0) {
            line += 20;
        }
        let n = l.len();
        let mut big = l.promoted(499);
        assert!(!big.is_full());
        assert_eq!(big.len(), n);
        assert!(big.record(LineAddr::new(line + 1000), 10));
        assert_eq!(big.len(), n + 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut l = AddrList::new(68);
        l.record(LineAddr::new(3), 0);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.used_bits(), 0);
        assert!(!l.is_full());
    }

    #[test]
    fn record_lines_iterator() {
        let r = AddrRecord { line: LineAddr::new(10), extra: 2, icount: 0 };
        let lines: Vec<u64> = r.lines().map(|l| l.as_u64()).collect();
        assert_eq!(lines, vec![10, 11, 12]);
        assert_eq!(r.run_len(), 3);
    }

    #[test]
    fn covered_blocks_counts_runs() {
        let mut l = AddrList::new(499);
        for i in 0..4 {
            l.record(LineAddr::new(i), 0);
        }
        l.record(LineAddr::new(100), 0);
        assert_eq!(l.covered_blocks(), 5);
    }
}
