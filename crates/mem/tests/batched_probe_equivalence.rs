//! The batched tag-sweep probe and run-prefetch entries are equivalent
//! to their scalar forms on randomized streams.

use esp_mem::{CacheConfig, HierarchyConfig, MemoryHierarchy, SetAssocCache};
use esp_types::{Cycle, LineAddr, Rng, SplitMix64};

/// `probe_run`'s bitmask must agree with one scalar `probe` per line,
/// across random contents, run starts (including set-index wrap), and
/// run lengths up to the 64-line cap.
#[test]
fn probe_run_matches_scalar_probe() {
    let mut rng = SplitMix64::new(0xBA7C);
    let mut c = SetAssocCache::new(CacheConfig::l1_32k("L1-D"));
    for round in 0..200 {
        // Grow the contents as rounds progress: probes see every mix of
        // cold, resident, and recently-evicted lines.
        for _ in 0..16 {
            let line = LineAddr::new(rng.next_u64() % 4096);
            c.fill(line, Cycle::ZERO, Cycle::new(rng.next_u64() % 500), rng.next_u64() & 1 != 0);
        }
        let start = LineAddr::new(rng.next_u64() % 4096);
        let n = 1 + rng.next_u64() % 64;
        let mask = c.probe_run(start, n);
        for k in 0..n {
            let line = LineAddr::new(start.as_u64() + k);
            assert_eq!(
                (mask >> k) & 1 != 0,
                c.probe(line),
                "round {round}: line {} of run [{}; {n}]",
                line.as_u64(),
                start.as_u64()
            );
        }
    }
}

fn scalar_prefetch_run(
    m: &mut MemoryHierarchy,
    instr: bool,
    start: LineAddr,
    n: u64,
    now: Cycle,
) -> u64 {
    (0..n)
        .map(|k| {
            let line = LineAddr::new(start.as_u64() + k);
            u64::from(if instr {
                m.prefetch_instr(line, now, true)
            } else {
                m.prefetch_data(line, now, true)
            })
        })
        .sum()
}

/// Driving one hierarchy through the batched run-prefetch entries and a
/// twin through per-line scalar prefetches — interleaved with identical
/// random demand traffic — must produce the same issued counts, op
/// logs, statistics, and subsequent demand-access results.
#[test]
fn run_prefetch_matches_scalar_loop() {
    let mut rng = SplitMix64::new(0x90F7);
    let mut batched = MemoryHierarchy::new(HierarchyConfig::exynos5250());
    let mut scalar = MemoryHierarchy::new(HierarchyConfig::exynos5250());
    batched.set_recording(true);
    scalar.set_recording(true);
    let mut t = 0u64;
    for round in 0..400 {
        t += rng.next_u64() % 200;
        let now = Cycle::new(t);
        match rng.next_u64() % 3 {
            // Demand traffic keeps LRU state, in-flight fills, and
            // prefetched bits diverse between run prefetches.
            0 => {
                let line = LineAddr::new(rng.next_u64() % 8192);
                let store = rng.next_u64() & 1 != 0;
                assert_eq!(
                    batched.access_data(line, now, store),
                    scalar.access_data(line, now, store),
                    "round {round}: demand data access"
                );
            }
            1 => {
                let line = LineAddr::new(rng.next_u64() % 8192);
                assert_eq!(
                    batched.access_instr(line, now),
                    scalar.access_instr(line, now),
                    "round {round}: demand instruction fetch"
                );
            }
            _ => {
                let start = LineAddr::new(rng.next_u64() % 8192);
                // I/D-list run records carry at most 8 lines (3-bit run
                // field); probe a little beyond that anyway.
                let n = 1 + rng.next_u64() % 12;
                let instr = rng.next_u64() & 1 != 0;
                let got = if instr {
                    batched.prefetch_instr_run(start, n, now, true)
                } else {
                    batched.prefetch_data_run(start, n, now, true)
                };
                let want = scalar_prefetch_run(&mut scalar, instr, start, n, now);
                assert_eq!(got, want, "round {round}: issued count for run [{start:?}; {n}]");
            }
        }
    }
    assert_eq!(batched.take_ops(), scalar.take_ops(), "op logs");
    assert_eq!(batched.snapshot(), scalar.snapshot(), "per-level statistics");
    // Post-hoc sweep: identical residency and latency classes everywhere.
    let end = Cycle::new(t + 1_000_000);
    for line in 0..8192 {
        let l = LineAddr::new(line);
        assert_eq!(
            batched.access_instr(l, end),
            scalar.access_instr(l, end),
            "final sweep: line {line} (instr)"
        );
        assert_eq!(
            batched.access_data(l, end, false),
            scalar.access_data(l, end, false),
            "final sweep: line {line} (data)"
        );
    }
}
