//! A generic set-associative LRU cache with fill latency.

use crate::CacheConfig;
use esp_stats::CacheStats;
use esp_types::{Cycle, LineAddr};

/// The outcome of a demand access to a [`SetAssocCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was resident and its fill had completed; the payload is the
    /// configured hit latency.
    Hit(u64),
    /// The line was resident but its fill is still in flight; the payload
    /// is the remaining latency (at least the hit latency).
    PartialHit(u64),
    /// The line was absent.
    Miss,
}

impl AccessResult {
    /// The latency to charge for hit-class outcomes; `None` for misses.
    pub fn hit_latency(self) -> Option<u64> {
        match self {
            AccessResult::Hit(l) | AccessResult::PartialHit(l) => Some(l),
            AccessResult::Miss => None,
        }
    }

    /// True for both full and partial hits.
    pub fn is_hit(self) -> bool {
        !matches!(self, AccessResult::Miss)
    }
}

/// Metadata words per slot and their offsets within a slot's group.
const META: usize = 3;
const M_READY: usize = 0;
const M_STAMP: usize = 1;
const M_PREFETCHED: usize = 2;

/// A set-associative cache with true-LRU replacement and per-line fill
/// latency.
///
/// Lines are indexed by [`LineAddr`]; the set index is the low bits of the
/// line address and the tag is the rest, so the structure works for any
/// power-of-two set count. The cache does not store data — only presence,
/// which is all a timing model needs.
///
/// Internally the ways are split into a flat tag array (the only array a
/// lookup scans) and one interleaved per-slot metadata array (ready
/// cycle, LRU stamp, prefetch bit) consulted only on a hit. The tag
/// array encodes validity in bit 0 (`(tag << 1) | 1`; `0` = invalid), so
/// the hot way-scan is a branchless equality sweep over adjacent `u64`s
/// with no per-way `valid` test and no early exit; the metadata
/// interleave keeps the subsequent bookkeeping on a single host cache
/// line.
///
/// # Examples
///
/// ```
/// use esp_mem::{AccessResult, CacheConfig, SetAssocCache};
/// use esp_types::{Cycle, LineAddr};
///
/// let mut c = SetAssocCache::new(CacheConfig::l1_32k("L1-D"));
/// let line = LineAddr::new(77);
/// assert_eq!(c.access(line, Cycle::ZERO), AccessResult::Miss);
/// c.fill(line, Cycle::ZERO, Cycle::new(101), false);
/// // An access at cycle 10 arrives 91 cycles before the fill completes.
/// assert_eq!(c.access(line, Cycle::new(10)), AccessResult::PartialHit(91));
/// assert_eq!(c.access(line, Cycle::new(200)), AccessResult::Hit(2));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// `(tag << 1) | 1` when valid, `0` when invalid; `sets × ways` flat,
    /// way-major within a set.
    tags: Vec<u64>,
    /// Per-slot metadata, [`META`] `u64` words per slot, interleaved so a
    /// hit touches one host cache line instead of three scattered arrays:
    /// `[ready, stamp, prefetched]`. `ready` is the raw [`Cycle`] at
    /// which the slot's fill completes (a demand access before it is a
    /// partial hit charged the remaining latency); `stamp` is the LRU
    /// stamp, larger is more recent (0 only for never-used slots);
    /// `prefetched` is nonzero while the line was brought in by a
    /// prefetcher and not yet touched by a demand access. Kept as plain
    /// zeroes-at-rest `u64`s so construction goes through `calloc` and
    /// untouched pages stay lazily mapped.
    meta: Vec<u64>,
    set_mask: u64,
    ways: usize,
    next_stamp: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let sets = config.sets() as usize;
        let ways = config.ways as usize;
        let slots = sets * ways;
        SetAssocCache {
            set_mask: sets as u64 - 1,
            tags: vec![0; slots],
            meta: vec![0; slots * META],
            ways,
            config,
            next_stamp: 1,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents) — used at warm-up boundaries.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Index of the first way of `line`'s set in the flat arrays.
    #[inline]
    fn set_base(&self, line: LineAddr) -> usize {
        (line.as_u64() & self.set_mask) as usize * self.ways
    }

    /// The valid-encoded tag `line` would be stored under.
    #[inline]
    fn key(&self, line: LineAddr) -> u64 {
        ((line.as_u64() >> self.set_mask.count_ones()) << 1) | 1
    }

    /// Scans every way of the set for `key` with no early exit: the loop
    /// body is a compare and a conditional move, so the compiler keeps it
    /// branch-free and the L1 hit path never mispredicts on way position.
    /// At most one way can match (fills never duplicate a tag).
    #[inline]
    fn find_way(&self, base: usize, key: u64) -> Option<usize> {
        let mut hit = usize::MAX;
        for (w, &t) in self.tags[base..base + self.ways].iter().enumerate() {
            if t == key {
                hit = w;
            }
        }
        (hit != usize::MAX).then(|| base + hit)
    }

    /// Performs a demand access: updates LRU, statistics, and the
    /// prefetched bit, and returns the latency class.
    pub fn access(&mut self, line: LineAddr, now: Cycle) -> AccessResult {
        let base = self.set_base(line);
        let key = self.key(line);
        let stamp = self.bump_stamp();
        let hit_latency = self.config.hit_latency;
        if let Some(idx) = self.find_way(base, key) {
            let m = idx * META;
            self.meta[m + M_STAMP] = stamp;
            if self.meta[m + M_PREFETCHED] != 0 {
                self.meta[m + M_PREFETCHED] = 0;
                self.stats.prefetch_useful += 1;
            }
            let ready = Cycle::new(self.meta[m + M_READY]);
            return if ready.is_after(now) {
                let remaining = (ready - now).max(hit_latency);
                self.stats.partial_hits += 1;
                AccessResult::PartialHit(remaining)
            } else {
                self.stats.hits += 1;
                AccessResult::Hit(hit_latency)
            };
        }
        self.stats.misses += 1;
        AccessResult::Miss
    }

    /// Checks for residency without disturbing LRU state, statistics, or
    /// the prefetched bit. Used by prefetch-redundancy checks and by the
    /// ESP bypass path, which must not pollute demand state (§3.4).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.find_way(self.set_base(line), self.key(line)).is_some()
    }

    /// Residency of the `n` consecutive lines starting at `start`, as a
    /// bitmask (bit `k` set when `start + k` is resident) — the batched
    /// form of [`SetAssocCache::probe`]. One contiguous tag-compare
    /// sweep per line with no early exit, like the internal way lookup:
    /// the whole run resolves with no data-dependent branches, where `n`
    /// scalar probes would branch on every outcome. Like `probe`, it
    /// disturbs no LRU state, statistics, or prefetched bits.
    ///
    /// Used by the replay prefetch kernels, which probe a whole I/D-list
    /// run record ahead of filling it. `n` must be at most 64.
    pub fn probe_run(&self, start: LineAddr, n: u64) -> u64 {
        debug_assert!(n <= 64);
        let mut mask = 0u64;
        for k in 0..n {
            let line = LineAddr::new(start.as_u64() + k);
            let base = self.set_base(line);
            let key = self.key(line);
            let mut hit = 0u64;
            for &t in &self.tags[base..base + self.ways] {
                hit |= u64::from(t == key);
            }
            mask |= hit << k;
        }
        mask
    }

    /// Inserts `line`, evicting the LRU way if the set is full. `ready` is
    /// the cycle at which the fill data arrives; `prefetched` marks
    /// prefetcher-initiated fills.
    ///
    /// Filling an already-resident line refreshes its LRU stamp and only
    /// moves `ready` *earlier* (a demand fill can expedite a lazy prefetch,
    /// never delay an earlier fill).
    pub fn fill(&mut self, line: LineAddr, _now: Cycle, ready: Cycle, prefetched: bool) {
        let base = self.set_base(line);
        let key = self.key(line);
        let stamp = self.bump_stamp();
        if let Some(idx) = self.find_way(base, key) {
            let m = idx * META;
            self.meta[m + M_STAMP] = stamp;
            if ready.as_u64() < self.meta[m + M_READY] {
                self.meta[m + M_READY] = ready.as_u64();
            }
            return;
        }
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        // First way with the minimal (invalid ? 0 : stamp) key — the same
        // victim `min_by_key` picked over the old array-of-structs sets.
        let mut victim = base;
        let mut best = u64::MAX;
        for idx in base..base + self.ways {
            let k = if self.tags[idx] != 0 { self.meta[idx * META + M_STAMP] } else { 0 };
            if k < best {
                best = k;
                victim = idx;
            }
        }
        self.tags[victim] = key;
        let m = victim * META;
        self.meta[m + M_READY] = ready.as_u64();
        self.meta[m + M_STAMP] = stamp;
        self.meta[m + M_PREFETCHED] = u64::from(prefetched);
    }

    /// Functional-warming access: one set scan that refreshes the LRU
    /// stamp on a hit and installs over the LRU victim on a miss, exactly
    /// as a probe followed by an instant fill would — but without the
    /// second scan, and with no statistics and no prefetched-bit changes.
    /// Returns whether the line was absent.
    #[inline]
    pub fn warm_touch(&mut self, line: LineAddr, now: Cycle) -> bool {
        let base = self.set_base(line);
        let key = self.key(line);
        let stamp = self.bump_stamp();
        if let Some(idx) = self.find_way(base, key) {
            let m = idx * META;
            self.meta[m + M_STAMP] = stamp;
            if now.as_u64() < self.meta[m + M_READY] {
                self.meta[m + M_READY] = now.as_u64();
            }
            return false;
        }
        let mut victim = base;
        let mut best = u64::MAX;
        for idx in base..base + self.ways {
            let k = if self.tags[idx] != 0 { self.meta[idx * META + M_STAMP] } else { 0 };
            if k < best {
                best = k;
                victim = idx;
            }
        }
        self.tags[victim] = key;
        let m = victim * META;
        self.meta[m + M_READY] = now.as_u64();
        self.meta[m + M_STAMP] = stamp;
        self.meta[m + M_PREFETCHED] = 0;
        true
    }

    /// Behavioural equality at a chunk boundary: whether `self` and
    /// `other` respond identically to every possible access sequence
    /// issued at or after `ref_now`.
    ///
    /// Raw LRU stamps are *not* comparable across a functionally-warmed
    /// cache and a detailed one (a detailed demand miss burns a stamp on
    /// the access and another on the fill, where a warm touch burns one),
    /// but the victim choice only depends on each set's stamp *rank
    /// order* — stamps are drawn from a strictly increasing counter, so
    /// valid ways never tie and any new stamp exceeds all existing ones.
    /// Likewise the exact `ready` cycle of a line that settled before
    /// `ref_now` can never matter again (fills only move `ready`
    /// earlier). So two caches are behaviourally equal iff each set
    /// holds the same valid lines, in the same recency order, with the
    /// same prefetched bits, and agrees on which fills are still in
    /// flight (and when those complete). Statistics are excluded — the
    /// merge accounts for them as deltas.
    pub fn boundary_eq(&self, other: &Self, ref_now: Cycle) -> bool {
        if self.set_mask != other.set_mask || self.ways != other.ways {
            return false;
        }
        let sets = (self.set_mask + 1) as usize;
        // Scratch for one set's (stamp, way-index) pairs, recency-sorted.
        let mut a: Vec<(u64, usize)> = Vec::with_capacity(self.ways);
        let mut b: Vec<(u64, usize)> = Vec::with_capacity(self.ways);
        for set in 0..sets {
            let base = set * self.ways;
            a.clear();
            b.clear();
            for w in 0..self.ways {
                if self.tags[base + w] != 0 {
                    a.push((self.meta[(base + w) * META + M_STAMP], base + w));
                }
                if other.tags[base + w] != 0 {
                    b.push((other.meta[(base + w) * META + M_STAMP], base + w));
                }
            }
            if a.len() != b.len() {
                return false;
            }
            a.sort_unstable();
            b.sort_unstable();
            for (&(_, ia), &(_, ib)) in a.iter().zip(&b) {
                if self.tags[ia] != other.tags[ib] {
                    return false;
                }
                let ma = ia * META;
                let mb = ib * META;
                if self.meta[ma + M_PREFETCHED] != other.meta[mb + M_PREFETCHED] {
                    return false;
                }
                let ra = self.meta[ma + M_READY];
                let rb = other.meta[mb + M_READY];
                let in_flight_a = ra > ref_now.as_u64();
                let in_flight_b = rb > ref_now.as_u64();
                if in_flight_a != in_flight_b || (in_flight_a && ra != rb) {
                    return false;
                }
            }
        }
        true
    }

    /// Shifts every still-in-flight fill (`ready > ref_now`) `delta`
    /// cycles later. The intra-run merge's accept step moves a whole
    /// chunk-exit state forward in time as one rigid unit; in-flight
    /// completion times are its only absolute-time component (settled
    /// `ready` values are behaviourally dead — see
    /// [`SetAssocCache::boundary_eq`]).
    pub fn shift_in_flight(&mut self, ref_now: Cycle, delta: u64) {
        if delta == 0 {
            return;
        }
        for idx in 0..self.tags.len() {
            if self.tags[idx] != 0 {
                let ready = &mut self.meta[idx * META + M_READY];
                if *ready > ref_now.as_u64() {
                    *ready += delta;
                }
            }
        }
    }

    /// Drops `line` if resident. Returns whether it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        match self.find_way(self.set_base(line), self.key(line)) {
            Some(idx) => {
                self.tags[idx] = 0;
                self.meta[idx * META..idx * META + META].fill(0);
                true
            }
            None => false,
        }
    }

    /// Empties the cache (contents only; statistics are preserved).
    pub fn flush(&mut self) {
        self.tags.fill(0);
        self.meta.fill(0);
    }

    /// The number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != 0).count()
    }

    fn bump_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets × 2 ways × 64 B = 256 B.
        SetAssocCache::new(CacheConfig {
            name: "tiny".into(),
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency: 2,
        })
    }

    /// Lines that all map to set 0 of the tiny cache.
    fn set0(n: u64) -> LineAddr {
        LineAddr::new(n * 2)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let l = set0(1);
        assert_eq!(c.access(l, Cycle::ZERO), AccessResult::Miss);
        c.fill(l, Cycle::ZERO, Cycle::ZERO, false);
        assert_eq!(c.access(l, Cycle::new(5)), AccessResult::Hit(2));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        let (a, b, d) = (set0(1), set0(2), set0(3));
        c.fill(a, Cycle::ZERO, Cycle::ZERO, false);
        c.fill(b, Cycle::ZERO, Cycle::ZERO, false);
        // Touch a so b becomes LRU.
        assert!(c.access(a, Cycle::new(1)).is_hit());
        c.fill(d, Cycle::ZERO, Cycle::ZERO, false);
        assert!(c.probe(a), "MRU line survived");
        assert!(!c.probe(b), "LRU line evicted");
        assert!(c.probe(d));
    }

    #[test]
    fn partial_hit_charges_remaining_latency() {
        let mut c = tiny();
        let l = set0(1);
        c.fill(l, Cycle::new(0), Cycle::new(100), false);
        assert_eq!(c.access(l, Cycle::new(40)), AccessResult::PartialHit(60));
        assert_eq!(c.stats().partial_hits, 1);
        // After completion it is a plain hit.
        assert_eq!(c.access(l, Cycle::new(100)), AccessResult::Hit(2));
    }

    #[test]
    fn partial_hit_is_at_least_hit_latency() {
        let mut c = tiny();
        let l = set0(1);
        c.fill(l, Cycle::new(0), Cycle::new(10), false);
        assert_eq!(c.access(l, Cycle::new(9)), AccessResult::PartialHit(2));
    }

    #[test]
    fn refill_only_moves_ready_earlier() {
        let mut c = tiny();
        let l = set0(1);
        c.fill(l, Cycle::ZERO, Cycle::new(50), false);
        c.fill(l, Cycle::ZERO, Cycle::new(200), false);
        assert_eq!(c.access(l, Cycle::new(60)), AccessResult::Hit(2));
        c.fill(l, Cycle::ZERO, Cycle::new(30), false);
        // Demoting ready below an elapsed point changes nothing further.
        assert_eq!(c.access(l, Cycle::new(60)), AccessResult::Hit(2));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        let (a, b, d) = (set0(1), set0(2), set0(3));
        c.fill(a, Cycle::ZERO, Cycle::ZERO, false);
        c.fill(b, Cycle::ZERO, Cycle::ZERO, false);
        // Probing a must NOT refresh it; a is LRU and should be evicted.
        assert!(c.probe(a));
        c.fill(d, Cycle::ZERO, Cycle::ZERO, false);
        assert!(!c.probe(a));
        assert!(c.probe(b));
    }

    #[test]
    fn prefetch_accounting() {
        let mut c = tiny();
        let l = set0(1);
        c.fill(l, Cycle::ZERO, Cycle::ZERO, true);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.access(l, Cycle::new(1)).is_hit());
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second touch does not double-count.
        assert!(c.access(l, Cycle::new(2)).is_hit());
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        let l = set0(1);
        c.fill(l, Cycle::ZERO, Cycle::ZERO, false);
        assert!(c.invalidate(l));
        assert!(!c.invalidate(l));
        assert!(!c.probe(l));
        c.fill(l, Cycle::ZERO, Cycle::ZERO, false);
        c.fill(set0(2), Cycle::ZERO, Cycle::ZERO, false);
        assert_eq!(c.occupancy(), 2);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        // Lines 0..4 cover both sets twice; all four fit.
        for i in 0..4 {
            c.fill(LineAddr::new(i), Cycle::ZERO, Cycle::ZERO, false);
        }
        assert_eq!(c.occupancy(), 4);
        for i in 0..4 {
            assert!(c.probe(LineAddr::new(i)));
        }
    }

    #[test]
    fn access_result_helpers() {
        assert_eq!(AccessResult::Hit(2).hit_latency(), Some(2));
        assert_eq!(AccessResult::PartialHit(60).hit_latency(), Some(60));
        assert_eq!(AccessResult::Miss.hit_latency(), None);
        assert!(AccessResult::Hit(2).is_hit());
        assert!(!AccessResult::Miss.is_hit());
    }

    #[test]
    fn tag_zero_line_is_storable() {
        // Line address 0 encodes to key 1, not the invalid sentinel 0, so
        // the valid-in-bit-0 scheme must store and find it.
        let mut c = tiny();
        let l = LineAddr::new(0);
        assert!(!c.probe(l));
        c.fill(l, Cycle::ZERO, Cycle::ZERO, false);
        assert!(c.probe(l));
        assert!(c.access(l, Cycle::new(1)).is_hit());
        assert!(c.invalidate(l));
        assert!(!c.probe(l));
    }

    #[test]
    fn eviction_prefers_invalid_ways() {
        let mut c = tiny();
        let (a, b, d) = (set0(1), set0(2), set0(3));
        c.fill(a, Cycle::ZERO, Cycle::ZERO, false);
        c.fill(b, Cycle::ZERO, Cycle::ZERO, false);
        // Invalidate the MRU way; the next fill must take the freed slot,
        // not evict the valid LRU line.
        assert!(c.invalidate(b));
        c.fill(d, Cycle::ZERO, Cycle::ZERO, false);
        assert!(c.probe(a), "valid line survived an invalid-way fill");
        assert!(c.probe(d));
    }
}
