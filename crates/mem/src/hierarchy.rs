//! The three-level demand hierarchy.

use crate::{AccessResult, HierarchyConfig, SetAssocCache};
use esp_stats::CacheStats;
use esp_types::{Cycle, LineAddr};

/// Per-level demand/prefetch counters sampled at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchySnapshot {
    /// The instruction L1's counters.
    pub l1i: CacheStats,
    /// The data L1's counters.
    pub l1d: CacheStats,
    /// The unified L2/LLC's counters.
    pub l2: CacheStats,
}

/// Which level of the hierarchy served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemLevel {
    /// Served by the L1 (instruction or data).
    L1,
    /// Served by the unified L2 (the last-level cache).
    L2,
    /// Served by DRAM — an LLC miss.
    Memory,
}

/// The result of one demand access through the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServedAccess {
    /// Total latency in cycles, as seen by the requesting instruction.
    pub latency: u64,
    /// The level that provided the line.
    pub level: MemLevel,
    /// True when the access missed the last-level cache — the trigger
    /// condition for both runahead and ESP mode entry.
    pub llc_miss: bool,
    /// True when the L1 lookup itself missed (full miss or in-flight
    /// partial hit) — what L1 MPKI counts.
    pub l1_miss: bool,
}

/// One recorded mutation of a [`MemoryHierarchy`], with its observed
/// result.
///
/// Every state-changing entry point of the hierarchy appends one op when
/// recording is enabled (see [`MemoryHierarchy::set_recording`]), so an
/// op log replayed in order against a fresh hierarchy of the same
/// configuration must reproduce the original per-op results and final
/// statistics exactly. The `esp-check` differential oracle relies on
/// this: any hidden mutation path or nondeterminism shows up as a replay
/// divergence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// A demand instruction fetch and the access result it returned.
    AccessInstr {
        /// The fetched line.
        line: LineAddr,
        /// Access time.
        now: Cycle,
        /// The result the real hierarchy returned.
        served: ServedAccess,
    },
    /// A demand data access and the access result it returned.
    AccessData {
        /// The accessed line.
        line: LineAddr,
        /// Access time.
        now: Cycle,
        /// Whether the access was a store.
        store: bool,
        /// The result the real hierarchy returned.
        served: ServedAccess,
    },
    /// An instruction-side prefetch request.
    PrefetchInstr {
        /// The prefetched line.
        line: LineAddr,
        /// Request time.
        now: Cycle,
        /// Whether the line was installed in L1-I as well as L2.
        into_l1: bool,
        /// Whether the request was non-redundant.
        issued: bool,
    },
    /// A data-side prefetch request.
    PrefetchData {
        /// The prefetched line.
        line: LineAddr,
        /// Request time.
        now: Cycle,
        /// Whether the line was installed in L1-D as well as L2.
        into_l1: bool,
        /// Whether the request was non-redundant.
        issued: bool,
    },
    /// An idealised zero-latency instruction prefetch.
    PrefetchInstrInstant {
        /// The prefetched line.
        line: LineAddr,
        /// Fill time.
        now: Cycle,
    },
    /// An idealised zero-latency data prefetch.
    PrefetchDataInstant {
        /// The prefetched line.
        line: LineAddr,
        /// Fill time.
        now: Cycle,
    },
    /// Statistics were reset.
    ResetStats,
}

/// The L1-I/L1-D/L2/DRAM demand path, with prefetch entry points.
///
/// Fills performed on behalf of demand accesses complete `latency` cycles
/// after the access; prefetch fills complete after the latency of the level
/// the line was found in. Either way, an access that arrives before the
/// fill completes is charged only the remaining latency (see
/// [`SetAssocCache`]).
///
/// # Examples
///
/// ```
/// use esp_mem::{HierarchyConfig, MemLevel, MemoryHierarchy};
/// use esp_types::{Addr, Cycle};
///
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::exynos5250());
/// let line = Addr::new(0x8000).line(64);
/// let r = mem.access_instr(line, Cycle::ZERO);
/// assert_eq!(r.level, MemLevel::Memory);
/// let r = mem.access_instr(line, Cycle::new(1000));
/// assert_eq!(r.level, MemLevel::L1);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    mem_latency: u64,
    /// Side-effect op log, populated only while recording is enabled.
    ops: Option<Vec<MemOp>>,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`HierarchyConfig::validate`].
    pub fn new(config: HierarchyConfig) -> Self {
        config.validate().expect("invalid hierarchy configuration");
        MemoryHierarchy {
            l1i: SetAssocCache::new(config.l1i),
            l1d: SetAssocCache::new(config.l1d),
            l2: SetAssocCache::new(config.l2),
            mem_latency: config.mem_latency,
            ops: None,
        }
    }

    /// Turns side-effect recording on or off. Enabling starts a fresh
    /// [`MemOp`] log; disabling drops any pending log.
    pub fn set_recording(&mut self, on: bool) {
        self.ops = on.then(Vec::new);
    }

    /// Takes the recorded op log, leaving recording enabled with an
    /// empty log. Returns an empty vector when recording was never on.
    pub fn take_ops(&mut self) -> Vec<MemOp> {
        match self.ops.as_mut() {
            Some(ops) => std::mem::take(ops),
            None => Vec::new(),
        }
    }

    #[inline]
    fn record(&mut self, op: MemOp) {
        if let Some(ops) = self.ops.as_mut() {
            ops.push(op);
        }
    }

    /// The instruction L1.
    pub fn l1i(&self) -> &SetAssocCache {
        &self.l1i
    }

    /// The data L1.
    pub fn l1d(&self) -> &SetAssocCache {
        &self.l1d
    }

    /// The unified L2.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// The DRAM access latency in cycles.
    pub fn mem_latency(&self) -> u64 {
        self.mem_latency
    }

    /// Behavioural equality of every level at a chunk boundary — see
    /// [`SetAssocCache::boundary_eq`]. Statistics and the op log are
    /// excluded: the intra-run merge accounts for both separately.
    pub fn boundary_eq(&self, other: &Self, ref_now: Cycle) -> bool {
        self.mem_latency == other.mem_latency
            && self.l1i.boundary_eq(&other.l1i, ref_now)
            && self.l1d.boundary_eq(&other.l1d, ref_now)
            && self.l2.boundary_eq(&other.l2, ref_now)
    }

    /// Shifts every level's still-in-flight fills `delta` cycles later —
    /// see [`SetAssocCache::shift_in_flight`]. Part of the intra-run
    /// merge's accept step.
    pub fn shift_in_flight(&mut self, ref_now: Cycle, delta: u64) {
        self.l1i.shift_in_flight(ref_now, delta);
        self.l1d.shift_in_flight(ref_now, delta);
        self.l2.shift_in_flight(ref_now, delta);
    }

    /// One immutable sample of every level's demand/prefetch counters
    /// (the per-level section of the observability run trace).
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
        }
    }

    /// Resets all statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.record(MemOp::ResetStats);
    }

    fn access_via(
        l1: &mut SetAssocCache,
        l2: &mut SetAssocCache,
        mem_latency: u64,
        line: LineAddr,
        now: Cycle,
    ) -> ServedAccess {
        match l1.access(line, now) {
            AccessResult::Hit(lat) => ServedAccess {
                latency: lat,
                level: MemLevel::L1,
                llc_miss: false,
                l1_miss: false,
            },
            AccessResult::PartialHit(lat) => ServedAccess {
                latency: lat,
                level: MemLevel::L1,
                llc_miss: false,
                l1_miss: true,
            },
            AccessResult::Miss => {
                let l1_hit = l1.config().hit_latency;
                match l2.access(line, now) {
                    AccessResult::Hit(l2_lat) => {
                        let latency = l1_hit + l2_lat;
                        l1.fill(line, now, now + latency, false);
                        ServedAccess {
                            latency,
                            level: MemLevel::L2,
                            llc_miss: false,
                            l1_miss: true,
                        }
                    }
                    AccessResult::PartialHit(rem) => {
                        let latency = l1_hit + rem;
                        l1.fill(line, now, now + latency, false);
                        ServedAccess {
                            latency,
                            level: MemLevel::L2,
                            llc_miss: false,
                            l1_miss: true,
                        }
                    }
                    AccessResult::Miss => {
                        let latency = mem_latency;
                        l2.fill(line, now, now + latency, false);
                        l1.fill(line, now, now + latency, false);
                        ServedAccess {
                            latency,
                            level: MemLevel::Memory,
                            llc_miss: true,
                            l1_miss: true,
                        }
                    }
                }
            }
        }
    }

    /// A demand instruction fetch of `line` at time `now`.
    #[inline]
    pub fn access_instr(&mut self, line: LineAddr, now: Cycle) -> ServedAccess {
        let served = Self::access_via(&mut self.l1i, &mut self.l2, self.mem_latency, line, now);
        self.record(MemOp::AccessInstr { line, now, served });
        served
    }

    /// A demand data access of `line` at time `now`. Stores and loads are
    /// timed identically here (write-allocate); the core model decides how
    /// much of the latency a store exposes.
    #[inline]
    pub fn access_data(&mut self, line: LineAddr, now: Cycle, is_store: bool) -> ServedAccess {
        let served = Self::access_via(&mut self.l1d, &mut self.l2, self.mem_latency, line, now);
        self.record(MemOp::AccessData { line, now, store: is_store, served });
        served
    }

    fn prefetch_via(
        l1: &mut SetAssocCache,
        l2: &mut SetAssocCache,
        mem_latency: u64,
        line: LineAddr,
        now: Cycle,
        into_l1: bool,
    ) -> bool {
        let in_l1 = l1.probe(line);
        if in_l1 && into_l1 {
            return false;
        }
        let in_l2 = l2.probe(line);
        let latency = if in_l1 || in_l2 {
            l2.config().hit_latency
        } else {
            mem_latency
        };
        let ready = now + latency;
        if !in_l2 {
            l2.fill(line, now, ready, true);
        }
        if into_l1 && !in_l1 {
            l1.fill(line, now, ready, true);
        }
        true
    }

    /// Prefetches `line` toward the instruction side. When `into_l1` the
    /// line is installed in both L1-I and L2, otherwise only in L2.
    /// Returns `false` when the request was redundant.
    pub fn prefetch_instr(&mut self, line: LineAddr, now: Cycle, into_l1: bool) -> bool {
        let issued =
            Self::prefetch_via(&mut self.l1i, &mut self.l2, self.mem_latency, line, now, into_l1);
        self.record(MemOp::PrefetchInstr { line, now, into_l1, issued });
        issued
    }

    /// Prefetches `line` toward the data side (see [`Self::prefetch_instr`]).
    pub fn prefetch_data(&mut self, line: LineAddr, now: Cycle, into_l1: bool) -> bool {
        let issued =
            Self::prefetch_via(&mut self.l1d, &mut self.l2, self.mem_latency, line, now, into_l1);
        self.record(MemOp::PrefetchData { line, now, into_l1, issued });
        issued
    }

    /// The batched body shared by the run-prefetch entry points: probes
    /// the whole run's residency in L1 and L2 with two branch-free tag
    /// sweeps, then fills the non-redundant lines. Returns the issued
    /// bitmask (bit `k` set when `start + k` was non-redundant).
    ///
    /// Equivalent to `n` scalar [`Self::prefetch_via`] calls because
    /// consecutive lines occupy distinct sets whenever `n` is at most
    /// each cache's set count: no fill in the run can evict or install a
    /// later line of the same run, so probing up front observes exactly
    /// what each scalar call would have. Callers enforce the bound.
    fn prefetch_run_via(
        l1: &mut SetAssocCache,
        l2: &mut SetAssocCache,
        mem_latency: u64,
        start: LineAddr,
        n: u64,
        now: Cycle,
        into_l1: bool,
    ) -> u64 {
        let l1_mask = l1.probe_run(start, n);
        let l2_mask = l2.probe_run(start, n);
        let mut issued_mask = 0u64;
        for k in 0..n {
            let in_l1 = (l1_mask >> k) & 1 != 0;
            if in_l1 && into_l1 {
                continue;
            }
            let line = LineAddr::new(start.as_u64() + k);
            let in_l2 = (l2_mask >> k) & 1 != 0;
            let latency = if in_l1 || in_l2 {
                l2.config().hit_latency
            } else {
                mem_latency
            };
            let ready = now + latency;
            if !in_l2 {
                l2.fill(line, now, ready, true);
            }
            if into_l1 && !in_l1 {
                l1.fill(line, now, ready, true);
            }
            issued_mask |= 1 << k;
        }
        issued_mask
    }

    /// Batched [`Self::prefetch_instr`] over the `n` consecutive lines
    /// starting at `start` — one replay I-list run record. Contents,
    /// statistics, and the op log come out exactly as `n` scalar calls
    /// would leave them (asserted on randomized streams in this crate's
    /// tests); runs too long for the batch-validity bound fall back to
    /// the scalar loop. Returns the number of non-redundant requests.
    pub fn prefetch_instr_run(&mut self, start: LineAddr, n: u64, now: Cycle, into_l1: bool) -> u64 {
        let bound = self.l1i.config().sets().min(self.l2.config().sets()).min(64);
        if n > bound {
            return (0..n)
                .map(|k| {
                    u64::from(self.prefetch_instr(LineAddr::new(start.as_u64() + k), now, into_l1))
                })
                .sum();
        }
        let mask = Self::prefetch_run_via(
            &mut self.l1i,
            &mut self.l2,
            self.mem_latency,
            start,
            n,
            now,
            into_l1,
        );
        for k in 0..n {
            let line = LineAddr::new(start.as_u64() + k);
            self.record(MemOp::PrefetchInstr { line, now, into_l1, issued: (mask >> k) & 1 != 0 });
        }
        u64::from(mask.count_ones())
    }

    /// Data-side twin of [`Self::prefetch_instr_run`].
    pub fn prefetch_data_run(&mut self, start: LineAddr, n: u64, now: Cycle, into_l1: bool) -> u64 {
        let bound = self.l1d.config().sets().min(self.l2.config().sets()).min(64);
        if n > bound {
            return (0..n)
                .map(|k| {
                    u64::from(self.prefetch_data(LineAddr::new(start.as_u64() + k), now, into_l1))
                })
                .sum();
        }
        let mask = Self::prefetch_run_via(
            &mut self.l1d,
            &mut self.l2,
            self.mem_latency,
            start,
            n,
            now,
            into_l1,
        );
        for k in 0..n {
            let line = LineAddr::new(start.as_u64() + k);
            self.record(MemOp::PrefetchData { line, now, into_l1, issued: (mask >> k) & 1 != 0 });
        }
        u64::from(mask.count_ones())
    }

    /// An idealised prefetch that completes instantly (used by the "ideal
    /// ESP" configurations of Figs. 11a/11b, which assume perfectly
    /// timely prefetches).
    pub fn prefetch_instr_instant(&mut self, line: LineAddr, now: Cycle) {
        self.l2.fill(line, now, now, true);
        self.l1i.fill(line, now, now, true);
        self.record(MemOp::PrefetchInstrInstant { line, now });
    }

    /// Data-side twin of [`Self::prefetch_instr_instant`].
    pub fn prefetch_data_instant(&mut self, line: LineAddr, now: Cycle) {
        self.l2.fill(line, now, now, true);
        self.l1d.fill(line, now, now, true);
        self.record(MemOp::PrefetchDataInstant { line, now });
    }

    /// Functional-warming instruction fetch: updates tags and LRU exactly
    /// as a demand fetch would, but with instant fills, no latency, no
    /// statistics, and no op-log entry. Returns whether the L1-I missed
    /// (the next-line prefetcher's trigger condition).
    ///
    /// Used by the sampling mode's fast-forward (see `esp-core`); the
    /// demand counters stay untouched so extrapolation scales only
    /// detailed-grain measurements.
    #[inline]
    pub fn warm_instr(&mut self, line: LineAddr, now: Cycle) -> bool {
        let missed = self.l1i.warm_touch(line, now);
        if missed {
            self.l2.warm_touch(line, now);
        }
        missed
    }

    /// Functional-warming data access (see [`Self::warm_instr`]).
    /// Returns whether the L1-D missed.
    #[inline]
    pub fn warm_data(&mut self, line: LineAddr, now: Cycle) -> bool {
        let missed = self.l1d.warm_touch(line, now);
        if missed {
            self.l2.warm_touch(line, now);
        }
        missed
    }

    /// Functional-warming instruction prefetch: instant install in L2 and
    /// L1-I with the prefetched bit clear, so warmed prefetches neither
    /// count as fills nor as useful prefetches in any level's statistics.
    #[inline]
    pub fn warm_prefetch_instr(&mut self, line: LineAddr, now: Cycle) {
        self.l2.fill(line, now, now, false);
        self.l1i.fill(line, now, now, false);
    }

    /// Data-side twin of [`Self::warm_prefetch_instr`].
    #[inline]
    pub fn warm_prefetch_data(&mut self, line: LineAddr, now: Cycle) {
        self.l2.fill(line, now, now, false);
        self.l1d.fill(line, now, now, false);
    }

    /// The latency an ESP-mode access bypassing the L1s would see: an L2
    /// probe decides between the L2 and DRAM latencies. The probe is
    /// non-updating and nothing is filled — the caller installs the line in
    /// its cachelet (§3.4: "bypasses the caches and is brought directly
    /// into the corresponding D-cachelet").
    ///
    /// Returns `(latency, llc_miss)`.
    pub fn bypass_latency(&self, line: LineAddr) -> (u64, bool) {
        if self.l2.probe(line) {
            (self.l2.config().hit_latency, false)
        } else {
            (self.mem_latency, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::exynos5250())
    }

    #[test]
    fn cold_miss_walks_to_memory_and_fills() {
        let mut m = mem();
        let l = LineAddr::new(1000);
        let r = m.access_instr(l, Cycle::ZERO);
        assert_eq!(r.level, MemLevel::Memory);
        assert!(r.llc_miss);
        assert!(r.l1_miss);
        assert_eq!(r.latency, 101);
        // Immediately after, the line is in flight: partial hit.
        let r2 = m.access_instr(l, Cycle::new(50));
        assert_eq!(r2.level, MemLevel::L1);
        assert!(!r2.llc_miss);
        assert!(r2.l1_miss, "in-flight partial hit counts as an L1 miss");
        assert_eq!(r2.latency, 51);
        // Once complete, a plain hit.
        let r3 = m.access_instr(l, Cycle::new(200));
        assert!(!r3.l1_miss);
        assert_eq!(r3.latency, 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = mem();
        // Fill a line, then evict it from L1 by filling its set with
        // conflicting lines (L1 is 2-way, 256 sets → stride 256 lines).
        let l = LineAddr::new(7);
        m.access_data(l, Cycle::ZERO, false);
        m.access_data(LineAddr::new(7 + 256), Cycle::new(200), false);
        m.access_data(LineAddr::new(7 + 512), Cycle::new(400), false);
        let r = m.access_data(l, Cycle::new(4000), false);
        assert_eq!(r.level, MemLevel::L2);
        assert!(!r.llc_miss);
        assert!(r.l1_miss);
        assert_eq!(r.latency, 2 + 21);
    }

    #[test]
    fn instr_and_data_l1_are_separate_but_share_l2() {
        let mut m = mem();
        let l = LineAddr::new(42);
        m.access_data(l, Cycle::ZERO, false);
        // Same line on the instruction side: misses L1-I, hits shared L2.
        let r = m.access_instr(l, Cycle::new(1000), );
        assert_eq!(r.level, MemLevel::L2);
    }

    #[test]
    fn prefetch_timeliness() {
        let mut m = mem();
        let l = LineAddr::new(9_999);
        assert!(m.prefetch_data(l, Cycle::ZERO, true));
        // Demand access at cycle 101 or later: full hit.
        let r = m.access_data(l, Cycle::new(101), false);
        assert!(!r.l1_miss);
        // A second prefetch to the same line is redundant.
        assert!(!m.prefetch_data(l, Cycle::new(200), true));
    }

    #[test]
    fn late_prefetch_gives_partial_hit() {
        let mut m = mem();
        let l = LineAddr::new(5_000);
        m.prefetch_instr(l, Cycle::ZERO, true);
        let r = m.access_instr(l, Cycle::new(20));
        assert!(r.l1_miss);
        assert_eq!(r.latency, 81);
        assert_eq!(r.level, MemLevel::L1);
    }

    #[test]
    fn l2_only_prefetch_leaves_l1_cold() {
        let mut m = mem();
        let l = LineAddr::new(123);
        m.prefetch_instr(l, Cycle::ZERO, false);
        let r = m.access_instr(l, Cycle::new(500));
        assert_eq!(r.level, MemLevel::L2);
        assert!(!r.llc_miss);
    }

    #[test]
    fn prefetch_from_l2_is_fast() {
        let mut m = mem();
        let l = LineAddr::new(321);
        // Bring into L2 via a demand access, evict from L1.
        m.access_data(l, Cycle::ZERO, false);
        m.access_data(LineAddr::new(321 + 256), Cycle::new(200), false);
        m.access_data(LineAddr::new(321 + 512), Cycle::new(400), false);
        assert!(!m.l1d().probe(l));
        // Prefetch back into L1: source is L2, so ready after 21 cycles.
        m.prefetch_data(l, Cycle::new(1000), true);
        let r = m.access_data(l, Cycle::new(1021), false);
        assert!(!r.l1_miss);
    }

    #[test]
    fn bypass_latency_probes_without_filling() {
        let mut m = mem();
        let l = LineAddr::new(777);
        assert_eq!(m.bypass_latency(l), (101, true));
        m.access_data(l, Cycle::ZERO, false);
        assert_eq!(m.bypass_latency(l), (21, false));
        // The probe must not have filled anything new.
        let occupancy = m.l2().occupancy();
        m.bypass_latency(LineAddr::new(888));
        assert_eq!(m.l2().occupancy(), occupancy);
    }

    #[test]
    fn op_log_replays_to_identical_state() {
        let mut m = mem();
        m.set_recording(true);
        m.access_instr(LineAddr::new(10), Cycle::ZERO);
        m.access_data(LineAddr::new(20), Cycle::new(5), false);
        m.access_data(LineAddr::new(20), Cycle::new(50), true);
        m.prefetch_instr(LineAddr::new(11), Cycle::new(60), true);
        m.prefetch_data_instant(LineAddr::new(30), Cycle::new(70));
        m.reset_stats();
        m.access_data(LineAddr::new(30), Cycle::new(80), false);
        let ops = m.take_ops();
        assert_eq!(ops.len(), 7);

        let mut shadow = mem();
        for op in &ops {
            match *op {
                MemOp::AccessInstr { line, now, served } => {
                    assert_eq!(shadow.access_instr(line, now), served);
                }
                MemOp::AccessData { line, now, store, served } => {
                    assert_eq!(shadow.access_data(line, now, store), served);
                }
                MemOp::PrefetchInstr { line, now, into_l1, issued } => {
                    assert_eq!(shadow.prefetch_instr(line, now, into_l1), issued);
                }
                MemOp::PrefetchData { line, now, into_l1, issued } => {
                    assert_eq!(shadow.prefetch_data(line, now, into_l1), issued);
                }
                MemOp::PrefetchInstrInstant { line, now } => {
                    shadow.prefetch_instr_instant(line, now);
                }
                MemOp::PrefetchDataInstant { line, now } => shadow.prefetch_data_instant(line, now),
                MemOp::ResetStats => shadow.reset_stats(),
            }
        }
        assert_eq!(shadow.snapshot(), m.snapshot());
    }

    #[test]
    fn recording_off_keeps_no_log() {
        let mut m = mem();
        m.access_instr(LineAddr::new(1), Cycle::ZERO);
        assert!(m.take_ops().is_empty());
        m.set_recording(true);
        m.access_instr(LineAddr::new(2), Cycle::ZERO);
        m.set_recording(false);
        assert!(m.take_ops().is_empty(), "disabling drops the pending log");
    }

    #[test]
    fn warm_access_updates_contents_but_not_stats() {
        let mut m = mem();
        m.set_recording(true);
        let l = LineAddr::new(4_242);
        assert!(m.warm_instr(l, Cycle::ZERO), "cold line misses L1-I");
        assert!(!m.warm_instr(l, Cycle::ZERO), "now resident");
        assert!(m.warm_data(LineAddr::new(555), Cycle::ZERO));
        m.warm_prefetch_instr(LineAddr::new(556), Cycle::ZERO);
        m.warm_prefetch_data(LineAddr::new(557), Cycle::ZERO);
        // Contents are visible to later demand accesses...
        assert!(m.l1i().probe(l));
        assert!(m.l1i().probe(LineAddr::new(556)));
        assert!(m.l1d().probe(LineAddr::new(557)));
        assert!(m.l2().probe(LineAddr::new(555)));
        // ...but no statistics or op-log entries were produced.
        assert_eq!(m.snapshot(), HierarchySnapshot::default());
        assert!(m.take_ops().is_empty());
        // A demand access to a warmed line is an instant hit.
        let r = m.access_instr(l, Cycle::new(5));
        assert!(!r.l1_miss);
    }

    #[test]
    fn warm_hit_refreshes_lru() {
        let mut m = mem();
        // L1-D is 2-way, 256 sets: three conflicting lines evict the LRU.
        let (a, b, c) = (LineAddr::new(7), LineAddr::new(7 + 256), LineAddr::new(7 + 512));
        m.warm_data(a, Cycle::ZERO);
        m.warm_data(b, Cycle::ZERO);
        m.warm_data(a, Cycle::ZERO); // refresh a: b becomes LRU
        m.warm_data(c, Cycle::ZERO);
        assert!(m.l1d().probe(a), "refreshed line survives");
        assert!(!m.l1d().probe(b), "stale line was the victim");
    }

    #[test]
    fn stats_reset() {
        let mut m = mem();
        m.access_instr(LineAddr::new(1), Cycle::ZERO);
        assert!(m.l1i().stats().accesses() > 0);
        m.reset_stats();
        assert_eq!(m.l1i().stats().accesses(), 0);
        assert_eq!(m.l2().stats().accesses(), 0);
        // Contents survive.
        assert!(m.l1i().probe(LineAddr::new(1)));
    }
}
