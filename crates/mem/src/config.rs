//! Cache and hierarchy geometry.

use esp_types::{Error, Result};

/// Geometry and latency of one cache level.
///
/// # Examples
///
/// ```
/// use esp_mem::CacheConfig;
///
/// let l1 = CacheConfig::l1_32k("L1-I");
/// assert_eq!(l1.sets(), 256);
/// assert_eq!(l1.lines(), 512);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in reports ("L1-I", "L2", …).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles when the line is resident.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 configuration: 32 KB, 2-way, 64 B lines, 2-cycle hit.
    pub fn l1_32k(name: &str) -> Self {
        CacheConfig {
            name: name.to_string(),
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 2,
        }
    }

    /// The paper's L2 configuration: 2 MB, 16-way, 64 B lines, 21-cycle hit.
    pub fn l2_2m() -> Self {
        CacheConfig {
            name: "L2".to_string(),
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            hit_latency: 21,
        }
    }

    /// The ESP-1 cachelet: 5.5 KB of a 12-way structure (11 ways × 8 sets),
    /// 2-cycle hit (Fig. 8).
    pub fn cachelet_esp1(name: &str) -> Self {
        CacheConfig {
            name: name.to_string(),
            size_bytes: 11 * 8 * 64,
            ways: 11,
            line_bytes: 64,
            hit_latency: 2,
        }
    }

    /// The number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }

    /// The total number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any field is zero, the line size
    /// is not a power of two, or the capacity is not an exact multiple of
    /// `ways * line_bytes` sets (with a power-of-two set count).
    pub fn validate(&self) -> Result<()> {
        if self.size_bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err(Error::invalid_config(format!(
                "{}: zero-sized field in cache config",
                self.name
            )));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(Error::invalid_config(format!(
                "{}: line size {} is not a power of two",
                self.name, self.line_bytes
            )));
        }
        let denom = self.line_bytes * self.ways as u64;
        if !self.size_bytes.is_multiple_of(denom) {
            return Err(Error::invalid_config(format!(
                "{}: size {} is not a multiple of ways*line ({})",
                self.name, self.size_bytes, denom
            )));
        }
        if !self.sets().is_power_of_two() {
            return Err(Error::invalid_config(format!(
                "{}: set count {} is not a power of two",
                self.name,
                self.sets()
            )));
        }
        Ok(())
    }
}

/// Configuration of the full demand hierarchy (Fig. 7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 (the last-level cache).
    pub l2: CacheConfig,
    /// DRAM access latency in cycles.
    pub mem_latency: u64,
}

impl HierarchyConfig {
    /// The baseline machine of the paper, modelled on Samsung's Exynos 5250.
    pub fn exynos5250() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1_32k("L1-I"),
            l1d: CacheConfig::l1_32k("L1-D"),
            l2: CacheConfig::l2_2m(),
            mem_latency: 101,
        }
    }

    /// Validates all levels.
    ///
    /// # Errors
    ///
    /// Returns the first level's [`Error::InvalidConfig`], or one for a
    /// zero memory latency or mismatched line sizes between levels.
    pub fn validate(&self) -> Result<()> {
        self.l1i.validate()?;
        self.l1d.validate()?;
        self.l2.validate()?;
        if self.mem_latency == 0 {
            return Err(Error::invalid_config("memory latency must be positive"));
        }
        if self.l1i.line_bytes != self.l2.line_bytes || self.l1d.line_bytes != self.l2.line_bytes {
            return Err(Error::invalid_config(
                "all cache levels must share one line size",
            ));
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::exynos5250()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let l1 = CacheConfig::l1_32k("L1-I");
        assert_eq!(l1.sets(), 256);
        assert_eq!(l1.lines(), 512);
        l1.validate().unwrap();

        let l2 = CacheConfig::l2_2m();
        assert_eq!(l2.sets(), 2048);
        assert_eq!(l2.lines(), 32768);
        l2.validate().unwrap();

        let cl = CacheConfig::cachelet_esp1("I-cachelet");
        assert_eq!(cl.sets(), 8);
        assert_eq!(cl.lines(), 88);
        assert_eq!(cl.size_bytes, 5632); // 5.5 KB
        cl.validate().unwrap();
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut c = CacheConfig::l1_32k("x");
        c.line_bytes = 60;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::l1_32k("x");
        c.ways = 0;
        assert!(c.validate().is_err());

        let mut c = CacheConfig::l1_32k("x");
        c.size_bytes = 3000;
        assert!(c.validate().is_err());

        // 3 sets: multiple of ways*line but not a power of two.
        let c = CacheConfig {
            name: "x".into(),
            size_bytes: 3 * 2 * 64,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn hierarchy_validation() {
        HierarchyConfig::exynos5250().validate().unwrap();
        let mut h = HierarchyConfig::exynos5250();
        h.mem_latency = 0;
        assert!(h.validate().is_err());
        let mut h = HierarchyConfig::exynos5250();
        h.l1d.line_bytes = 128;
        h.l1d.size_bytes = 32 * 1024;
        assert!(h.validate().is_err());
    }

    #[test]
    fn default_is_exynos() {
        assert_eq!(HierarchyConfig::default(), HierarchyConfig::exynos5250());
    }
}
