//! Cache hierarchy, prefetchers, and ESP cachelets.
//!
//! This crate is the memory-system substrate of the ESP reproduction. It
//! models the paper's Fig. 7 configuration — 32 KB 2-way L1-I and L1-D,
//! a 2 MB 16-way L2 as the last-level cache (LLC), and a 101-cycle DRAM —
//! plus all the structures the evaluation compares:
//!
//! * [`SetAssocCache`] — a generic set-associative LRU cache whose lines
//!   carry a *ready cycle*, so fills have latency and a demand access that
//!   arrives before the fill completes is a **partial hit** charged only
//!   the remaining latency. This is what makes "too early" prefetches
//!   (naive ESP, Fig. 10) and "timely" list-driven prefetches behave
//!   differently.
//! * [`MemoryHierarchy`] — the three-level demand path with prefetch entry
//!   points at each level and non-updating probes for the ESP bypass path.
//! * [`prefetch`] — the baseline prefetchers: a next-line instruction
//!   prefetcher, an Intel-DCU-style next-line data prefetcher (waits for
//!   four consecutive accesses to a line), and a 256-entry PC-indexed
//!   stride prefetcher.
//! * [`Cachelet`] — the 6 KB, 12-way L0 structures used exclusively during
//!   ESP pre-execution, with the way-partitioning/rotation scheme of §4.2
//!   (one way reserved for ESP-2, alternating ends on event completion).
//!
//! # Examples
//!
//! ```
//! use esp_mem::{HierarchyConfig, MemoryHierarchy};
//! use esp_types::{Addr, Cycle};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::exynos5250());
//! let line = Addr::new(0x4_0000).line(64);
//! let first = mem.access_data(line, Cycle::ZERO, false);
//! assert!(first.llc_miss); // cold
//! let again = mem.access_data(line, Cycle::new(500), false);
//! assert!(!again.llc_miss);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cachelet;
mod config;
mod hierarchy;
pub mod prefetch;

pub use cache::{AccessResult, SetAssocCache};
pub use cachelet::{Cachelet, CacheletSlot};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{HierarchySnapshot, MemLevel, MemOp, MemoryHierarchy, ServedAccess};
