//! The baseline prefetchers of the evaluation (Fig. 7).
//!
//! Three prefetchers from the paper's baseline: a next-line instruction
//! prefetcher, Intel's DCU-style next-line data prefetcher (which "waits
//! for four consecutive accesses to the same data cache line before
//! prefetching the next", §5), and a 256-entry PC-indexed stride
//! prefetcher modelled on Intel's IP prefetcher.
//!
//! Each prefetcher is a pure address-stream observer: the core feeds it
//! demand accesses, it returns candidate lines, and the core issues them
//! through [`crate::MemoryHierarchy`]. This keeps policy (what to fetch)
//! separate from mechanism (latency, pollution) and lets the same policy
//! drive both the normal and ideal configurations.

use esp_stats::PrefetchStats;
use esp_types::{Addr, LineAddr};

/// Next-line instruction prefetcher: whenever the fetch stream enters a
/// new cache line, the following line is prefetched.
///
/// # Examples
///
/// ```
/// use esp_mem::prefetch::NextLineInstr;
/// use esp_types::LineAddr;
///
/// let mut nl = NextLineInstr::new();
/// assert_eq!(nl.on_fetch(LineAddr::new(10)), Some(LineAddr::new(11)));
/// // Staying within the line does not re-issue.
/// assert_eq!(nl.on_fetch(LineAddr::new(10)), None);
/// assert_eq!(nl.on_fetch(LineAddr::new(11)), Some(LineAddr::new(12)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct NextLineInstr {
    last_line: Option<LineAddr>,
    stats: PrefetchStats,
}

impl NextLineInstr {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a fetch of `line`; returns the line to prefetch, if any.
    pub fn on_fetch(&mut self, line: LineAddr) -> Option<LineAddr> {
        if self.last_line == Some(line) {
            return None;
        }
        self.last_line = Some(line);
        self.stats.record(false);
        Some(line.next())
    }

    /// Issue statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Whether `self` and `other` would issue identical prefetches for
    /// any future fetch stream (statistics excluded).
    pub fn same_state(&self, other: &Self) -> bool {
        self.last_line == other.last_line
    }
}

/// Intel-DCU-style next-line data prefetcher: after four consecutive
/// accesses to the same line, prefetch the next line (once per streak).
///
/// # Examples
///
/// ```
/// use esp_mem::prefetch::DcuNextLine;
/// use esp_types::LineAddr;
///
/// let mut dcu = DcuNextLine::new();
/// let l = LineAddr::new(5);
/// assert_eq!(dcu.on_access(l), None);
/// assert_eq!(dcu.on_access(l), None);
/// assert_eq!(dcu.on_access(l), None);
/// assert_eq!(dcu.on_access(l), Some(LineAddr::new(6)));
/// assert_eq!(dcu.on_access(l), None); // already triggered for this streak
/// ```
#[derive(Clone, Debug, Default)]
pub struct DcuNextLine {
    /// Small fully-associative tracker of recently touched lines:
    /// (line, count, triggered, lru-stamp).
    entries: Vec<(LineAddr, u32, bool, u64)>,
    clock: u64,
    stats: PrefetchStats,
}

/// Accesses to the same line required before the DCU triggers.
const DCU_THRESHOLD: u32 = 4;
/// Tracked lines. Real DCUs require back-to-back accesses; a small
/// tracker tolerates the interleaving every real access stream has while
/// preserving the "multiple touches before fetching ahead" filter.
const DCU_TRACKED: usize = 4;

impl DcuNextLine {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a data access to `line`; returns the line to prefetch if
    /// this is the line's fourth recent touch (once per streak).
    pub fn on_access(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == line) {
            e.1 += 1;
            e.3 = clock;
            if e.1 >= DCU_THRESHOLD && !e.2 {
                e.2 = true;
                self.stats.record(false);
                return Some(line.next());
            }
            return None;
        }
        if self.entries.len() == DCU_TRACKED {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.3)
                .map(|(i, _)| i)
                .expect("tracker non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((line, 1, false, clock));
        None
    }

    /// Issue statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Whether `self` and `other` would issue identical prefetches for
    /// any future access stream. The tracker entries and the LRU clock
    /// both matter (the clock orders future evictions); statistics are
    /// excluded.
    pub fn same_state(&self, other: &Self) -> bool {
        self.entries == other.entries && self.clock == other.clock
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct StrideEntry {
    tag: u64,
    last_addr: Addr,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// A 256-entry PC-indexed stride prefetcher (Fig. 7's "Stride (256
/// entries)").
///
/// Each entry tracks the last address and stride of one static load; after
/// two consecutive confirmations of the same non-zero stride, the next
/// address in the pattern is prefetched.
///
/// # Examples
///
/// ```
/// use esp_mem::prefetch::StridePrefetcher;
/// use esp_types::Addr;
///
/// let mut sp = StridePrefetcher::new(256);
/// let pc = Addr::new(0x400);
/// assert_eq!(sp.on_load(pc, Addr::new(0x1000), 64), None);
/// assert_eq!(sp.on_load(pc, Addr::new(0x1100), 64), None); // learn stride
/// assert_eq!(sp.on_load(pc, Addr::new(0x1200), 64), None); // confidence 1
/// // Third confirmation: predict 0x1400.
/// let line = sp.on_load(pc, Addr::new(0x1300), 64).unwrap();
/// assert_eq!(line, Addr::new(0x1400).line(64));
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    entries: Vec<StrideEntry>,
    mask: u64,
    stats: PrefetchStats,
}

impl StridePrefetcher {
    /// Creates a stride table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "stride table size must be a power of two");
        StridePrefetcher {
            entries: vec![StrideEntry::default(); entries],
            mask: entries as u64 - 1,
            stats: PrefetchStats::default(),
        }
    }

    /// Observes a dynamic load at `pc` to `addr`; returns the line to
    /// prefetch when the entry's stride is confident.
    pub fn on_load(&mut self, pc: Addr, addr: Addr, line_bytes: u64) -> Option<LineAddr> {
        let idx = ((pc.as_u64() >> 2) & self.mask) as usize;
        let tag = pc.as_u64() >> 2 >> self.mask.count_ones();
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            *e = StrideEntry { tag, last_addr: addr, stride: 0, confidence: 0, valid: true };
            return None;
        }
        let delta = addr.distance(e.last_addr);
        e.last_addr = addr;
        if delta != 0 && delta == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.stride = delta;
            e.confidence = 0;
            return None;
        }
        if e.confidence >= 2 {
            let target = Addr::new(addr.as_u64().wrapping_add_signed(e.stride));
            let line = target.line(line_bytes);
            if line != addr.line(line_bytes) {
                self.stats.record(false);
                return Some(line);
            }
        }
        None
    }

    /// Issue statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Whether `self` and `other` would issue identical prefetches for
    /// any future load stream (statistics excluded).
    pub fn same_state(&self, other: &Self) -> bool {
        self.mask == other.mask && self.entries == other.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_dedups_within_line() {
        let mut nl = NextLineInstr::new();
        assert_eq!(nl.on_fetch(LineAddr::new(1)), Some(LineAddr::new(2)));
        assert_eq!(nl.on_fetch(LineAddr::new(1)), None);
        assert_eq!(nl.on_fetch(LineAddr::new(2)), Some(LineAddr::new(3)));
        // Returning to a previous line re-triggers (it is a new streak).
        assert_eq!(nl.on_fetch(LineAddr::new(1)), Some(LineAddr::new(2)));
        assert_eq!(nl.stats().issued, 3);
    }

    #[test]
    fn dcu_requires_four_touches() {
        let mut d = DcuNextLine::new();
        let a = LineAddr::new(10);
        for _ in 0..3 {
            assert_eq!(d.on_access(a), None);
        }
        assert_eq!(d.on_access(a), Some(a.next()));
        // Further accesses in the same streak stay quiet.
        assert_eq!(d.on_access(a), None);
        assert_eq!(d.on_access(a), None);
    }

    #[test]
    fn dcu_tolerates_interleaving() {
        let mut d = DcuNextLine::new();
        let a = LineAddr::new(10);
        let b = LineAddr::new(20);
        // a's touches interleaved with b's must still trigger for a.
        assert_eq!(d.on_access(a), None);
        assert_eq!(d.on_access(b), None);
        assert_eq!(d.on_access(a), None);
        assert_eq!(d.on_access(b), None);
        assert_eq!(d.on_access(a), None);
        assert_eq!(d.on_access(a), Some(a.next()));
    }

    #[test]
    fn dcu_tracker_capacity_evicts_lru() {
        let mut d = DcuNextLine::new();
        let a = LineAddr::new(10);
        for _ in 0..3 {
            d.on_access(a);
        }
        // Four distinct newer lines evict a's entry.
        for i in 0..4 {
            d.on_access(LineAddr::new(100 + i));
        }
        // a starts from scratch: three touches are not enough.
        for _ in 0..3 {
            assert_eq!(d.on_access(a), None);
        }
        assert_eq!(d.on_access(a), Some(a.next()));
    }

    #[test]
    fn stride_learns_and_predicts() {
        let mut sp = StridePrefetcher::new(64);
        let pc = Addr::new(0x100);
        let mut addr = 0x1_0000u64;
        let mut fired = 0;
        for _ in 0..10 {
            if sp.on_load(pc, Addr::new(addr), 64).is_some() {
                fired += 1;
            }
            addr += 256;
        }
        assert!(fired >= 7, "stride should fire once confident, fired={fired}");
    }

    #[test]
    fn stride_ignores_random_streams() {
        let mut sp = StridePrefetcher::new(64);
        let pc = Addr::new(0x104);
        let addrs = [0x10u64, 0x9000, 0x44, 0x123456, 0x77, 0x9999];
        for a in addrs {
            assert_eq!(sp.on_load(pc, Addr::new(a), 64), None);
        }
    }

    #[test]
    fn stride_small_strides_within_line_do_not_fire() {
        let mut sp = StridePrefetcher::new(64);
        let pc = Addr::new(0x108);
        // Stride 8 within one 64-byte line: confident but same line, so no
        // prefetch until the pattern crosses a line boundary.
        let mut fired = 0;
        for i in 0..8 {
            if sp.on_load(pc, Addr::new(0x2000 + i * 8), 64).is_some() {
                fired += 1;
            }
        }
        assert!(fired <= 2, "fired={fired}");
    }

    #[test]
    fn stride_entries_conflict_by_index_tag() {
        let mut sp = StridePrefetcher::new(4);
        // Two PCs mapping to the same slot with different tags evict each
        // other; neither gets confident.
        let pc_a = Addr::new(0x100);
        let pc_b = Addr::new(0x100 + 4 * 4 * 4); // same low index bits
        for i in 0..6 {
            assert_eq!(sp.on_load(pc_a, Addr::new(0x1000 + i * 128), 64), None);
            assert_eq!(sp.on_load(pc_b, Addr::new(0x8000 + i * 128), 64), None);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn stride_rejects_non_power_of_two() {
        let _ = StridePrefetcher::new(100);
    }
}
