//! The ESP L0 cachelets (§3.4, §4.2).
//!
//! During ESP pre-execution all instruction fetches and data accesses are
//! served by small "cachelets" that bypass the L1/L2 entirely: speculative
//! stores stay private, demand state is not polluted, and the pre-executed
//! event's working set survives the control bouncing between normal and
//! ESP modes.
//!
//! Physically a cachelet is one 12-way, 8-set (6 KB) structure shared by
//! the two ESP modes: one way is *reserved* for ESP-2 (0.5 KB) and the
//! other eleven belong to ESP-1 (5.5 KB). When the current event finishes
//! and the ESP-2 event is promoted to ESP-1, the reserved way flips to the
//! opposite end of the set so the promoted event keeps its lines and gains
//! ten more ways.

use crate::AccessResult;
use esp_stats::CacheStats;
use esp_types::{Cycle, LineAddr};

/// Which ESP mode an access belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheletSlot {
    /// One event ahead (jump-ahead depth 1).
    Esp1,
    /// Two events ahead (jump-ahead depth 2).
    Esp2,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    ready: Cycle,
    stamp: u64,
}

const INVALID: Line = Line { tag: 0, valid: false, ready: Cycle::ZERO, stamp: 0 };

/// Total associativity of the shared structure.
pub(crate) const CACHELET_WAYS: usize = 12;
/// Number of sets (6 KB / 64 B / 12 ways).
pub(crate) const CACHELET_SETS: usize = 8;

/// A 6 KB, 12-way, way-partitioned ESP cachelet (instruction or data).
///
/// # Examples
///
/// ```
/// use esp_mem::{Cachelet, CacheletSlot};
/// use esp_types::{Cycle, LineAddr};
///
/// let mut c = Cachelet::new(2);
/// let l = LineAddr::new(3);
/// assert!(!c.access(CacheletSlot::Esp1, l, Cycle::ZERO).is_hit());
/// c.fill(CacheletSlot::Esp1, l, Cycle::ZERO, Cycle::ZERO);
/// assert!(c.access(CacheletSlot::Esp1, l, Cycle::new(1)).is_hit());
/// // The fill is invisible to ESP-2 — the slots are isolated.
/// assert!(!c.access(CacheletSlot::Esp2, l, Cycle::new(1)).is_hit());
/// ```
#[derive(Clone, Debug)]
pub struct Cachelet {
    sets: Vec<[Line; CACHELET_WAYS]>,
    /// The way reserved for ESP-2; alternates between 0 and
    /// `CACHELET_WAYS - 1` on rotation.
    reserved_way: usize,
    hit_latency: u64,
    next_stamp: u64,
    stats_esp1: CacheStats,
    stats_esp2: CacheStats,
}

impl Cachelet {
    /// Creates an empty cachelet with the given hit latency (the paper
    /// uses 2 cycles, Fig. 8).
    pub fn new(hit_latency: u64) -> Self {
        Cachelet {
            sets: vec![[INVALID; CACHELET_WAYS]; CACHELET_SETS],
            reserved_way: CACHELET_WAYS - 1,
            hit_latency,
            next_stamp: 1,
            stats_esp1: CacheStats::default(),
            stats_esp2: CacheStats::default(),
        }
    }

    /// Lines available to a slot (88 for ESP-1, 8 for ESP-2).
    pub fn capacity_lines(&self, slot: CacheletSlot) -> usize {
        match slot {
            CacheletSlot::Esp1 => (CACHELET_WAYS - 1) * CACHELET_SETS,
            CacheletSlot::Esp2 => CACHELET_SETS,
        }
    }

    /// Capacity in bytes for a slot, assuming 64-byte lines.
    pub fn capacity_bytes(&self, slot: CacheletSlot) -> usize {
        self.capacity_lines(slot) * 64
    }

    /// Accumulated statistics for a slot.
    pub fn stats(&self, slot: CacheletSlot) -> &CacheStats {
        match slot {
            CacheletSlot::Esp1 => &self.stats_esp1,
            CacheletSlot::Esp2 => &self.stats_esp2,
        }
    }

    /// Whether way `w` belongs to `slot` under the current partition.
    #[inline(always)]
    fn owns(reserved: usize, slot: CacheletSlot, w: usize) -> bool {
        match slot {
            CacheletSlot::Esp1 => w != reserved,
            CacheletSlot::Esp2 => w == reserved,
        }
    }

    fn ways_of(&self, slot: CacheletSlot) -> impl Iterator<Item = usize> {
        let reserved = self.reserved_way;
        (0..CACHELET_WAYS).filter(move |&w| Self::owns(reserved, slot, w))
    }

    #[inline]
    fn set_index(line: LineAddr) -> usize {
        (line.as_u64() % CACHELET_SETS as u64) as usize
    }

    #[inline]
    fn tag(line: LineAddr) -> u64 {
        line.as_u64() / CACHELET_SETS as u64
    }

    /// Accesses `line` on behalf of a slot, updating LRU and statistics.
    pub fn access(&mut self, slot: CacheletSlot, line: LineAddr, now: Cycle) -> AccessResult {
        let si = Self::set_index(line);
        let tag = Self::tag(line);
        let stamp = self.bump_stamp();
        let hit_latency = self.hit_latency;
        let reserved = self.reserved_way;
        let set = &mut self.sets[si];
        let mut result = AccessResult::Miss;
        for (w, way) in set.iter_mut().enumerate() {
            if !Self::owns(reserved, slot, w) {
                continue;
            }
            if way.valid && way.tag == tag {
                way.stamp = stamp;
                result = if way.ready.is_after(now) {
                    AccessResult::PartialHit((way.ready - now).max(hit_latency))
                } else {
                    AccessResult::Hit(hit_latency)
                };
                break;
            }
        }
        let stats = self.stats_mut(slot);
        match result {
            AccessResult::Hit(_) => stats.hits += 1,
            AccessResult::PartialHit(_) => stats.partial_hits += 1,
            AccessResult::Miss => stats.misses += 1,
        }
        result
    }

    /// Fills `line` into a slot's partition, evicting its LRU way.
    pub fn fill(&mut self, slot: CacheletSlot, line: LineAddr, _now: Cycle, ready: Cycle) {
        let si = Self::set_index(line);
        let tag = Self::tag(line);
        let stamp = self.bump_stamp();
        let reserved = self.reserved_way;
        let set = &mut self.sets[si];
        // One pass finds both the resident way (if any) and the LRU
        // victim among the slot's ways.
        let mut victim = usize::MAX;
        let mut best = u64::MAX;
        for (w, way) in set.iter_mut().enumerate() {
            if !Self::owns(reserved, slot, w) {
                continue;
            }
            if way.valid && way.tag == tag {
                way.stamp = stamp;
                if ready < way.ready {
                    way.ready = ready;
                }
                return;
            }
            let k = if way.valid { way.stamp } else { 0 };
            if k < best {
                best = k;
                victim = w;
            }
        }
        assert!(victim != usize::MAX, "slot partitions are never empty");
        set[victim] = Line { tag, valid: true, ready, stamp };
    }

    /// Event-completion rotation (§4.2): the ESP-2 event is promoted to
    /// ESP-1 *keeping its reserved way's contents*, and the way at the
    /// opposite end of the set becomes the new (invalidated) ESP-2 way.
    pub fn rotate(&mut self) {
        let new_reserved = if self.reserved_way == 0 { CACHELET_WAYS - 1 } else { 0 };
        for set in &mut self.sets {
            set[new_reserved] = INVALID;
        }
        self.reserved_way = new_reserved;
    }

    /// Empties both partitions (used when speculation is squashed).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.fill(INVALID);
        }
    }

    /// Currently valid lines in a slot's partition.
    pub fn occupancy(&self, slot: CacheletSlot) -> usize {
        let ways: Vec<usize> = self.ways_of(slot).collect();
        self.sets
            .iter()
            .map(|set| ways.iter().filter(|&&w| set[w].valid).count())
            .sum()
    }

    fn stats_mut(&mut self, slot: CacheletSlot) -> &mut CacheStats {
        match slot {
            CacheletSlot::Esp1 => &mut self.stats_esp1,
            CacheletSlot::Esp2 => &mut self.stats_esp2,
        }
    }

    fn bump_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_fig8() {
        let c = Cachelet::new(2);
        assert_eq!(c.capacity_lines(CacheletSlot::Esp1), 88);
        assert_eq!(c.capacity_bytes(CacheletSlot::Esp1), 5632); // 5.5 KB
        assert_eq!(c.capacity_lines(CacheletSlot::Esp2), 8);
        assert_eq!(c.capacity_bytes(CacheletSlot::Esp2), 512); // 0.5 KB
    }

    #[test]
    fn slots_are_isolated() {
        let mut c = Cachelet::new(2);
        let l = LineAddr::new(16);
        c.fill(CacheletSlot::Esp1, l, Cycle::ZERO, Cycle::ZERO);
        assert!(c.access(CacheletSlot::Esp1, l, Cycle::new(1)).is_hit());
        assert!(!c.access(CacheletSlot::Esp2, l, Cycle::new(1)).is_hit());
        let l2 = LineAddr::new(24);
        c.fill(CacheletSlot::Esp2, l2, Cycle::ZERO, Cycle::ZERO);
        assert!(c.access(CacheletSlot::Esp2, l2, Cycle::new(1)).is_hit());
        assert!(!c.access(CacheletSlot::Esp1, l2, Cycle::new(1)).is_hit());
    }

    #[test]
    fn esp2_partition_is_one_way() {
        let mut c = Cachelet::new(2);
        // Two lines mapping to the same set: the second evicts the first
        // in ESP-2's single way.
        let a = LineAddr::new(0);
        let b = LineAddr::new(8);
        c.fill(CacheletSlot::Esp2, a, Cycle::ZERO, Cycle::ZERO);
        c.fill(CacheletSlot::Esp2, b, Cycle::ZERO, Cycle::ZERO);
        assert!(!c.access(CacheletSlot::Esp2, a, Cycle::new(1)).is_hit());
        assert!(c.access(CacheletSlot::Esp2, b, Cycle::new(1)).is_hit());
    }

    #[test]
    fn esp1_partition_holds_eleven_conflicting_lines() {
        let mut c = Cachelet::new(2);
        let lines: Vec<LineAddr> = (0..11).map(|i| LineAddr::new(i * 8)).collect();
        for &l in &lines {
            c.fill(CacheletSlot::Esp1, l, Cycle::ZERO, Cycle::ZERO);
        }
        for &l in &lines {
            assert!(c.access(CacheletSlot::Esp1, l, Cycle::new(1)).is_hit());
        }
        // A twelfth conflicting line evicts the LRU one.
        c.fill(CacheletSlot::Esp1, LineAddr::new(11 * 8), Cycle::ZERO, Cycle::ZERO);
        assert!(!c.access(CacheletSlot::Esp1, lines[0], Cycle::new(2)).is_hit());
    }

    #[test]
    fn rotation_promotes_esp2_contents() {
        let mut c = Cachelet::new(2);
        let l = LineAddr::new(16);
        c.fill(CacheletSlot::Esp2, l, Cycle::ZERO, Cycle::ZERO);
        c.rotate();
        // The promoted event (now ESP-1) still sees its line.
        assert!(c.access(CacheletSlot::Esp1, l, Cycle::new(1)).is_hit());
        // The fresh ESP-2 partition is empty.
        assert_eq!(c.occupancy(CacheletSlot::Esp2), 0);
    }

    #[test]
    fn rotation_clears_new_esp2_way_only() {
        let mut c = Cachelet::new(2);
        // Fill ESP-1 fully in one set; after rotation exactly one way's
        // line (the newly reserved way at the opposite end) is lost.
        for i in 0..11 {
            c.fill(CacheletSlot::Esp1, LineAddr::new(i * 8), Cycle::ZERO, Cycle::ZERO);
        }
        assert_eq!(c.occupancy(CacheletSlot::Esp1), 11);
        c.rotate();
        // ESP-1 keeps 11 ways (the old reserved way joins, the new one
        // leaves); at most one line was invalidated.
        assert!(c.occupancy(CacheletSlot::Esp1) >= 10);
        assert_eq!(c.occupancy(CacheletSlot::Esp2), 0);
    }

    #[test]
    fn double_rotation_round_trips_reserved_way() {
        let mut c = Cachelet::new(2);
        c.rotate();
        c.rotate();
        assert_eq!(c.reserved_way, CACHELET_WAYS - 1);
    }

    #[test]
    fn partial_hits_in_cachelet() {
        let mut c = Cachelet::new(2);
        let l = LineAddr::new(5);
        c.fill(CacheletSlot::Esp1, l, Cycle::ZERO, Cycle::new(101));
        assert_eq!(
            c.access(CacheletSlot::Esp1, l, Cycle::new(1)),
            AccessResult::PartialHit(100)
        );
        assert_eq!(c.stats(CacheletSlot::Esp1).partial_hits, 1);
    }

    #[test]
    fn flush_empties_everything() {
        let mut c = Cachelet::new(2);
        c.fill(CacheletSlot::Esp1, LineAddr::new(1), Cycle::ZERO, Cycle::ZERO);
        c.fill(CacheletSlot::Esp2, LineAddr::new(2), Cycle::ZERO, Cycle::ZERO);
        c.flush();
        assert_eq!(c.occupancy(CacheletSlot::Esp1), 0);
        assert_eq!(c.occupancy(CacheletSlot::Esp2), 0);
    }
}
