//! Ratio-estimator statistics for the SMARTS-style sampling mode.
//!
//! The sampled execution mode (see `esp-core`) measures a systematic
//! sample of fixed-size instruction grains in full detail and functionally
//! warms the rest. The quantity of interest — CPI, or any per-instruction
//! cycle-class share — is a *ratio* of two totals (cycles over
//! instructions), so the natural estimator is the combined ratio
//! estimator, and its standard error comes from the residuals of each
//! measured grain against the pooled ratio (Cochran, *Sampling
//! Techniques*, §6.4; the same formulation SMARTS uses for its CPI
//! confidence intervals).

/// A ratio estimate `Σy / Σx` over measured grains, with its standard
/// error and a 95% confidence half-width.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RatioEstimate {
    /// The pooled ratio `Σy / Σx` (e.g. cycles per instruction).
    pub ratio: f64,
    /// Standard error of the ratio (0 when fewer than two grains).
    pub se: f64,
    /// 95% confidence half-width (`1.96 × se`).
    pub ci95: f64,
    /// Number of measured grains the estimate pools.
    pub n: u64,
}

impl RatioEstimate {
    /// Relative 95% confidence half-width in percent of the ratio
    /// (0 when the ratio itself is 0).
    pub fn rel_ci95_pct(&self) -> f64 {
        if self.ratio == 0.0 {
            0.0
        } else {
            100.0 * self.ci95 / self.ratio
        }
    }
}

/// Compute the combined ratio estimate over `(x, y)` grain samples,
/// where `x` is the denominator total per grain (instructions) and `y`
/// the numerator total (cycles of some class).
///
/// The standard error uses the residuals `e_j = y_j − r·x_j`:
/// `se = sqrt(Σe² / (n(n−1))) / x̄`, the standard linearised variance of
/// a ratio estimator under systematic sampling treated as random.
///
/// # Examples
///
/// ```
/// use esp_stats::ratio_estimate;
///
/// // Perfectly uniform grains: exact ratio, zero error.
/// let est = ratio_estimate(&[(100, 150), (100, 150), (100, 150)]);
/// assert_eq!(est.ratio, 1.5);
/// assert_eq!(est.se, 0.0);
/// assert_eq!(est.n, 3);
/// ```
pub fn ratio_estimate(samples: &[(u64, u64)]) -> RatioEstimate {
    let n = samples.len() as u64;
    let sum_x: u128 = samples.iter().map(|&(x, _)| x as u128).sum();
    let sum_y: u128 = samples.iter().map(|&(_, y)| y as u128).sum();
    if n == 0 || sum_x == 0 {
        return RatioEstimate::default();
    }
    let ratio = sum_y as f64 / sum_x as f64;
    if n < 2 {
        return RatioEstimate {
            ratio,
            se: 0.0,
            ci95: 0.0,
            n,
        };
    }
    let mean_x = sum_x as f64 / n as f64;
    let sum_sq: f64 = samples
        .iter()
        .map(|&(x, y)| {
            let e = y as f64 - ratio * x as f64;
            e * e
        })
        .sum();
    let se = (sum_sq / (n as f64 * (n as f64 - 1.0))).sqrt() / mean_x;
    RatioEstimate {
        ratio,
        se,
        ci95: 1.96 * se,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(ratio_estimate(&[]), RatioEstimate::default());
        let one = ratio_estimate(&[(10, 25)]);
        assert_eq!(one.ratio, 2.5);
        assert_eq!(one.se, 0.0);
        assert_eq!(one.n, 1);
    }

    #[test]
    fn zero_denominator_is_safe() {
        assert_eq!(ratio_estimate(&[(0, 5), (0, 5)]), RatioEstimate::default());
    }

    #[test]
    fn uniform_grains_have_zero_error() {
        let est = ratio_estimate(&[(50, 100), (50, 100), (50, 100), (50, 100)]);
        assert_eq!(est.ratio, 2.0);
        assert_eq!(est.se, 0.0);
        assert_eq!(est.ci95, 0.0);
    }

    #[test]
    fn varying_grains_have_positive_error() {
        let est = ratio_estimate(&[(100, 100), (100, 300), (100, 200)]);
        assert_eq!(est.ratio, 2.0);
        assert!(est.se > 0.0);
        assert!((est.ci95 - 1.96 * est.se).abs() < 1e-12);
        assert!(est.rel_ci95_pct() > 0.0);
    }

    #[test]
    fn error_shrinks_with_more_grains() {
        let few: Vec<(u64, u64)> = (0..4).map(|i| (100, 150 + (i % 2) * 20)).collect();
        let many: Vec<(u64, u64)> = (0..64).map(|i| (100, 150 + (i % 2) * 20)).collect();
        let a = ratio_estimate(&few);
        let b = ratio_estimate(&many);
        assert!(b.se < a.se);
    }
}
