//! Prequential residual tracking for the learned fast-forward mode.
//!
//! The learned sampling mode (see `esp-learn` / `esp-core`) predicts each
//! measured grain's per-instruction cycle metrics from features of the
//! preceding functionally-warmed stretch, *before* the grain is measured.
//! Comparing prediction against measurement gives a prequential (predict-
//! then-test) residual series per metric. This module accumulates those
//! residuals — a whole-run mean plus a short rolling window that drives
//! the skip/fall-back decision — and widens a [`RatioEstimate`]'s
//! confidence interval by the observed prediction noise, so a learned run
//! never reports a tighter interval than its model earned.

use crate::RatioEstimate;

/// Length of the rolling residual window (most recent predictions).
pub const RESIDUAL_WINDOW: usize = 8;

/// Accumulates relative prediction residuals for one metric.
///
/// Residuals are recorded as `|predicted - actual| / actual` (skipped when
/// `actual` is not strictly positive, since a relative error against a
/// zero metric is meaningless). All state is a handful of scalars and a
/// fixed window — no allocation, deterministic accumulation order.
#[derive(Clone, Copy, Debug)]
pub struct ResidualAccum {
    n: u64,
    sum_rel: f64,
    sum_sq_rel: f64,
    window: [f64; RESIDUAL_WINDOW],
    widx: usize,
    wlen: usize,
}

impl Default for ResidualAccum {
    fn default() -> Self {
        ResidualAccum {
            n: 0,
            sum_rel: 0.0,
            sum_sq_rel: 0.0,
            window: [0.0; RESIDUAL_WINDOW],
            widx: 0,
            wlen: 0,
        }
    }
}

impl ResidualAccum {
    /// Records one predicted-vs-actual pair. Pairs with a non-positive
    /// actual are ignored (no meaningful relative error exists).
    pub fn observe(&mut self, predicted: f64, actual: f64) {
        if !actual.is_finite() || actual <= 0.0 || !predicted.is_finite() {
            return;
        }
        // The window keeps the *signed* residual: grain-to-grain noise
        // averages out of the rolling bias, systematic drift does not.
        let rel = (predicted - actual) / actual;
        self.n += 1;
        self.sum_rel += rel.abs();
        self.sum_sq_rel += rel * rel;
        self.window[self.widx] = rel;
        self.widx = (self.widx + 1) % RESIDUAL_WINDOW;
        self.wlen = (self.wlen + 1).min(RESIDUAL_WINDOW);
    }

    /// Residual pairs recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean absolute relative residual over the whole run, in percent.
    pub fn mean_abs_rel_pct(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * self.sum_rel / self.n as f64
        }
    }

    /// Root-mean-square relative residual over the whole run, in percent.
    pub fn rel_rmse_pct(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * (self.sum_sq_rel / self.n as f64).sqrt()
        }
    }

    /// Mean absolute relative residual over the most recent
    /// [`RESIDUAL_WINDOW`] predictions, in percent.
    pub fn rolling_mean_abs_rel_pct(&self) -> f64 {
        if self.wlen == 0 {
            return 0.0;
        }
        let sum: f64 = self.window[..self.wlen].iter().map(|r| r.abs()).sum();
        100.0 * sum / self.wlen as f64
    }

    /// *Signed* mean relative residual over the most recent
    /// [`RESIDUAL_WINDOW`] predictions, in percent. This is the signal
    /// the learned mode's skip/fall-back controller gates on: per-grain
    /// CPI is inherently noisy (25–40% coefficient of variation in the
    /// bundled workloads), so absolute per-prediction error cannot
    /// separate model failure from grain noise — but noise averages out
    /// of the signed mean while model failure or skip-induced state
    /// drift shows up as persistent bias.
    pub fn rolling_bias_pct(&self) -> f64 {
        if self.wlen == 0 {
            return 0.0;
        }
        let sum: f64 = self.window[..self.wlen].iter().sum();
        100.0 * sum / self.wlen as f64
    }

    /// Predictions currently inside the rolling window.
    pub fn window_len(&self) -> usize {
        self.wlen
    }

    /// Widens `est` by the accumulated prediction noise: the residual RMS
    /// (as a fraction of the ratio) is treated as an independent error
    /// source on the estimate's mean, shrinking with the number of
    /// predictions pooled, and added to the standard error in quadrature:
    ///
    /// `se' = sqrt(se² + (rmse_rel · ratio)² / n)`
    ///
    /// A run whose model predicted poorly therefore reports a wider —
    /// never a narrower — interval than plain sampling would. With no
    /// residuals recorded, `est` is returned unchanged.
    pub fn inflate(&self, est: RatioEstimate) -> RatioEstimate {
        if self.n == 0 || est.ratio == 0.0 {
            return est;
        }
        let extra = self.rel_rmse_pct() / 100.0 * est.ratio;
        let se = (est.se * est.se + extra * extra / self.n as f64).sqrt();
        RatioEstimate { ratio: est.ratio, se, ci95: 1.96 * se, n: est.n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio_estimate;

    #[test]
    fn empty_accum_is_inert() {
        let r = ResidualAccum::default();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean_abs_rel_pct(), 0.0);
        assert_eq!(r.rolling_mean_abs_rel_pct(), 0.0);
        let est = ratio_estimate(&[(100, 150), (100, 170)]);
        assert_eq!(r.inflate(est), est);
    }

    #[test]
    fn residuals_accumulate_and_roll() {
        let mut r = ResidualAccum::default();
        r.observe(1.1, 1.0); // +10%
        r.observe(0.8, 1.0); // -20%
        assert_eq!(r.count(), 2);
        assert!((r.mean_abs_rel_pct() - 15.0).abs() < 1e-9);
        assert!((r.rolling_mean_abs_rel_pct() - 15.0).abs() < 1e-9);
        // Signed bias: (+10 − 20) / 2 = −5%.
        assert!((r.rolling_bias_pct() - -5.0).abs() < 1e-9);
        assert_eq!(r.window_len(), 2);
        // Flood the window with exact predictions: the rolling view
        // forgets the early errors, the whole-run mean does not.
        for _ in 0..RESIDUAL_WINDOW {
            r.observe(2.0, 2.0);
        }
        assert_eq!(r.rolling_mean_abs_rel_pct(), 0.0);
        assert!(r.mean_abs_rel_pct() > 0.0);
    }

    #[test]
    fn non_positive_actuals_are_ignored() {
        let mut r = ResidualAccum::default();
        r.observe(1.0, 0.0);
        r.observe(1.0, -2.0);
        r.observe(f64::NAN, 1.0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn inflate_only_widens() {
        let mut r = ResidualAccum::default();
        r.observe(1.05, 1.0);
        r.observe(0.93, 1.0);
        let est = ratio_estimate(&[(100, 150), (100, 170), (100, 160)]);
        let wide = r.inflate(est);
        assert_eq!(wide.ratio, est.ratio);
        assert!(wide.se > est.se);
        assert!((wide.ci95 - 1.96 * wide.se).abs() < 1e-12);
    }
}
