//! Plain-text report tables.

use std::fmt;

/// A simple column-aligned text table, used by the `repro` harness to print
/// each figure in the same rows/series layout as the paper.
///
/// # Examples
///
/// ```
/// use esp_stats::Table;
///
/// let mut t = Table::new(vec!["config".into(), "amazon".into(), "HMean".into()]);
/// t.push_row(vec!["NL".into(), "13.2".into(), "13.8".into()]);
/// let s = t.to_string();
/// assert!(s.contains("config"));
/// assert!(s.contains("13.8"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Convenience constructor from string slices.
    pub fn with_headers(headers: &[&str]) -> Self {
        Table::new(headers.iter().map(|s| s.to_string()).collect())
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Appends a row of a label followed by formatted floats.
    pub fn push_metric_row(&mut self, label: &str, values: &[f64], decimals: usize) {
        let mut row = vec![label.to_string()];
        row.extend(values.iter().map(|v| format!("{v:.decimals$}")));
        self.push_row(row);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header row.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > w[i] {
                    w[i] = cell.len();
                }
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = w[i])?;
                } else {
                    write!(f, "  {:>width$}", cell, width = w[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_content() {
        let mut t = Table::with_headers(&["name", "v"]);
        t.push_row(vec!["a-long-label".into(), "1".into()]);
        t.push_metric_row("b", &[2.125], 2);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a-long-label"));
        assert!(lines[3].contains("2.13") || lines[3].contains("2.12"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::with_headers(&["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn accessors() {
        let t = Table::with_headers(&["x"]);
        assert_eq!(t.headers(), &["x".to_string()]);
        assert!(t.rows().is_empty());
        assert!(t.is_empty());
    }
}
