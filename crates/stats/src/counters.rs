//! Raw event counters for the structural models.

/// Access counters for one cache (or cachelet) instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit a resident line.
    pub hits: u64,
    /// Demand accesses that missed entirely.
    pub misses: u64,
    /// Demand accesses that hit a fill still in flight (charged the
    /// remaining latency, not the full miss).
    pub partial_hits: u64,
    /// Lines filled on behalf of a prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines that were touched by a demand access before
    /// eviction.
    pub prefetch_useful: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.partial_hits
    }

    /// Records a demand access outcome; `hit` covers full hits only.
    pub fn record_access(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Demand miss rate in percent (partial hits count as hits, matching
    /// the paper's miss-rate definition of avoided full misses).
    pub fn miss_rate_pct(&self) -> f64 {
        crate::percent(self.misses, self.accesses())
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.partial_hits += other.partial_hits;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_useful += other.prefetch_useful;
    }
}

/// Outcome counters for the branch predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Dynamic branches whose direction *and* target were predicted.
    pub correct: u64,
    /// Dynamic branches mispredicted (direction or target).
    pub mispredicted: u64,
}

impl BranchStats {
    /// Total predicted branches.
    pub fn total(&self) -> u64 {
        self.correct + self.mispredicted
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, correct: bool) {
        if correct {
            self.correct += 1;
        } else {
            self.mispredicted += 1;
        }
    }

    /// Misprediction rate in percent.
    pub fn mispredict_rate_pct(&self) -> f64 {
        crate::percent(self.mispredicted, self.total())
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &BranchStats) {
        self.correct += other.correct;
        self.mispredicted += other.mispredicted;
    }
}

/// Issue counters for one prefetcher instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Requests dropped because the line was already resident or in
    /// flight.
    pub redundant: u64,
}

impl PrefetchStats {
    /// Records an issue attempt.
    pub fn record(&mut self, redundant: bool) {
        self.issued += 1;
        if redundant {
            self.redundant += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_accounting() {
        let mut s = CacheStats::default();
        for _ in 0..3 {
            s.record_access(true);
        }
        s.record_access(false);
        s.partial_hits += 1;
        assert_eq!(s.accesses(), 5);
        assert!((s.miss_rate_pct() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cache_stats_merge() {
        let mut a = CacheStats { hits: 1, misses: 2, partial_hits: 3, prefetch_fills: 4, prefetch_useful: 5 };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 4);
        assert_eq!(a.prefetch_useful, 10);
    }

    #[test]
    fn branch_stats() {
        let mut s = BranchStats::default();
        for _ in 0..9 {
            s.record(true);
        }
        s.record(false);
        assert_eq!(s.total(), 10);
        assert!((s.mispredict_rate_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn prefetch_stats() {
        let mut s = PrefetchStats::default();
        s.record(false);
        s.record(true);
        assert_eq!(s.issued, 2);
        assert_eq!(s.redundant, 1);
    }

    #[test]
    fn empty_rates_are_zero() {
        assert_eq!(CacheStats::default().miss_rate_pct(), 0.0);
        assert_eq!(BranchStats::default().mispredict_rate_pct(), 0.0);
    }
}
