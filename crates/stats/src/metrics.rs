//! Derived metrics shared by every figure.

/// Misses per kilo-instruction.
///
/// # Examples
///
/// ```
/// assert_eq!(esp_stats::mpki(50, 10_000), 5.0);
/// ```
pub fn mpki(misses: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        misses as f64 * 1000.0 / instructions as f64
    }
}

/// `num / den` as a percentage; 0 when the denominator is 0.
pub fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 * 100.0 / den as f64
    }
}

/// `num / den` as a plain ratio; 0 when the denominator is 0.
pub fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Performance improvement of `test` over `base`, in percent, where the
/// inputs are cycle counts (lower is better):
/// `(base_cycles / test_cycles - 1) * 100`.
///
/// # Examples
///
/// ```
/// // A run that takes 80 cycles instead of 100 is 25 % faster.
/// assert_eq!(esp_stats::improvement_pct(100, 80), 25.0);
/// ```
pub fn improvement_pct(base_cycles: u64, test_cycles: u64) -> f64 {
    if test_cycles == 0 {
        0.0
    } else {
        (base_cycles as f64 / test_cycles as f64 - 1.0) * 100.0
    }
}

/// The harmonic mean of a set of per-benchmark improvement percentages,
/// computed over the corresponding speedups — the aggregation the paper's
/// "HMean" bars use.
///
/// Each improvement `p` (in percent) corresponds to a speedup `1 + p/100`;
/// the function returns the improvement implied by the harmonic mean of
/// those speedups. Negative improvements are handled naturally.
///
/// # Examples
///
/// ```
/// let h = esp_stats::harmonic_mean_improvement(&[10.0, 10.0]);
/// assert!((h - 10.0).abs() < 1e-9);
/// ```
pub fn harmonic_mean_improvement(improvements_pct: &[f64]) -> f64 {
    if improvements_pct.is_empty() {
        return 0.0;
    }
    let inv_sum: f64 = improvements_pct
        .iter()
        .map(|p| 1.0 / (1.0 + p / 100.0))
        .sum();
    let hmean_speedup = improvements_pct.len() as f64 / inv_sum;
    (hmean_speedup - 1.0) * 100.0
}

/// The harmonic mean of raw per-benchmark metric values, with the
/// arithmetic mean as a fallback when any value is non-positive (the
/// harmonic mean is undefined there — e.g. a zero MPKI row) and `0.0`
/// for empty input.
///
/// # Examples
///
/// ```
/// assert_eq!(esp_stats::harmonic_mean(&[4.0, 4.0]), 4.0);
/// // Non-positive values fall back to the arithmetic mean.
/// assert_eq!(esp_stats::harmonic_mean(&[0.0, 10.0]), 5.0);
/// ```
pub fn harmonic_mean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    if vals.iter().any(|&v| v <= 0.0) {
        vals.iter().sum::<f64>() / vals.len() as f64
    } else {
        vals.len() as f64 / vals.iter().map(|v| 1.0 / v).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_basics() {
        assert_eq!(mpki(0, 1000), 0.0);
        assert_eq!(mpki(10, 0), 0.0);
        assert!((mpki(175, 10_000) - 17.5).abs() < 1e-9);
    }

    #[test]
    fn percent_and_rate() {
        assert_eq!(percent(1, 4), 25.0);
        assert_eq!(percent(1, 0), 0.0);
        assert_eq!(rate(3, 4), 0.75);
        assert_eq!(rate(3, 0), 0.0);
    }

    #[test]
    fn improvement() {
        assert_eq!(improvement_pct(100, 100), 0.0);
        assert!((improvement_pct(132, 100) - 32.0).abs() < 1e-9);
        assert!(improvement_pct(90, 100) < 0.0);
        assert_eq!(improvement_pct(100, 0), 0.0);
    }

    #[test]
    fn hmean_between_min_and_max() {
        let h = harmonic_mean_improvement(&[10.0, 20.0, 30.0]);
        assert!(h > 10.0 && h < 30.0);
        // Harmonic mean is below the arithmetic mean.
        assert!(h < 20.0);
    }

    #[test]
    fn hmean_handles_negatives_and_empty() {
        assert_eq!(harmonic_mean_improvement(&[]), 0.0);
        let h = harmonic_mean_improvement(&[-5.0, 5.0]);
        assert!(h.abs() < 1.0, "h={h}");
    }

    #[test]
    fn harmonic_mean_of_positive_values() {
        let h = harmonic_mean(&[1.0, 2.0, 4.0]);
        // 3 / (1 + 0.5 + 0.25) = 12/7.
        assert!((h - 12.0 / 7.0).abs() < 1e-12, "h={h}");
        // Below the arithmetic mean, above the minimum.
        assert!(h < (1.0 + 2.0 + 4.0) / 3.0);
        assert!(h > 1.0);
    }

    #[test]
    fn harmonic_mean_non_positive_fallback() {
        // Any zero or negative value switches to the arithmetic mean.
        assert_eq!(harmonic_mean(&[0.0, 2.0, 4.0]), 2.0);
        assert_eq!(harmonic_mean(&[-3.0, 3.0]), 0.0);
        // Empty input is 0, not NaN.
        assert_eq!(harmonic_mean(&[]), 0.0);
    }
}
