//! Counters, derived metrics, and report tables for the ESP simulator.
//!
//! Every structural model in the workspace (caches, predictors, the core)
//! exposes its raw event counts through the small counter structs here;
//! derived metrics (MPKI, miss rates, IPC, improvement percentages,
//! harmonic means) are computed in one place so every figure reports them
//! identically (§6 of the paper). Cycle-level *attribution* — which
//! stall class a cycle belongs to — lives one layer up in `esp-obs`.
//!
//! # Examples
//!
//! ```
//! use esp_stats::{mpki, percent, CacheStats};
//!
//! let mut s = CacheStats::default();
//! s.record_access(false);
//! s.record_access(true);
//! assert_eq!(s.accesses(), 2);
//! assert_eq!(s.misses, 1);
//! assert_eq!(mpki(s.misses, 1000), 1.0);
//! assert_eq!(percent(1, 2), 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod metrics;
mod residual;
mod sampling;
mod table;

pub use counters::{BranchStats, CacheStats, PrefetchStats};
pub use metrics::{harmonic_mean, harmonic_mean_improvement, improvement_pct, mpki, percent, rate};
pub use residual::{ResidualAccum, RESIDUAL_WINDOW};
pub use sampling::{ratio_estimate, RatioEstimate};
pub use table::Table;
