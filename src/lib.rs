//! # Event Sneak Peek (ESP) — a reproduction of the ISCA 2015 paper
//!
//! *"Accelerating Asynchronous Programs through Event Sneak Peek"*,
//! G. Chadha, S. Mahlke, S. Narayanasamy, ISCA 2015.
//!
//! This crate is the facade over the workspace: it re-exports the public
//! API of every subsystem so downstream users can depend on a single
//! crate. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record.
//!
//! # Quickstart
//!
//! ```
//! use event_sneak_peek::prelude::*;
//!
//! // A small scaled-down "amazon" browsing session.
//! let workload = BenchmarkProfile::amazon().scaled(400_000).build(42);
//! // Baseline with next-line prefetching, then ESP on top.
//! let base = Simulator::new(SimConfig::next_line()).run(&workload);
//! let esp = Simulator::new(SimConfig::esp_nl()).run(&workload);
//! assert!(esp.total_cycles < base.total_cycles);
//! ```
//!
//! # Layout
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `esp-types` | Addresses, cycles, ids, deterministic RNG |
//! | [`trace`] | `esp-trace` | Micro-ops, event records, streams |
//! | [`workload`] | `esp-workload` | Synthetic async-program generator, the 7 profiles |
//! | [`mem`] | `esp-mem` | Caches, prefetchers, cachelets |
//! | [`branch`] | `esp-branch` | Pentium-M-style predictor + ESP contexts |
//! | [`lists`] | `esp-lists` | I/D/B prediction lists with compressed encodings |
//! | [`uarch`] | `esp-uarch` | Interval timing model + runahead |
//! | [`core`] | `esp-core` | The ESP architecture and the [`prelude::Simulator`] facade |
//! | [`learn`] | `esp-learn` | Learned fast-forward models for the sampled mode |
//! | [`stats`] | `esp-stats` | Counters, metrics, report tables |
//! | [`obs`] | `esp-obs` | CPI-stack stall attribution, probes, JSONL tracing |
//! | [`energy`] | `esp-energy` | Energy and area models |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use esp_branch as branch;
pub use esp_core as core;
pub use esp_energy as energy;
pub use esp_learn as learn;
pub use esp_lists as lists;
pub use esp_mem as mem;
pub use esp_obs as obs;
pub use esp_stats as stats;
pub use esp_trace as trace;
pub use esp_types as types;
pub use esp_uarch as uarch;
pub use esp_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use esp_core::{EspFeatures, RunReport, SimConfig, SimMode, Simulator};
    pub use esp_obs::{CpiObserver, CpiStack};
    pub use esp_trace::{EventStream, Workload};
    pub use esp_types::{Addr, Cycle, EventId, EventKindId, LineAddr};
    pub use esp_uarch::MachineConfig;
    pub use esp_workload::{BenchmarkProfile, GeneratedWorkload};
}
