//! Calibration-band regression tests: the synthetic workloads must keep
//! producing baseline metrics in the neighbourhood of the paper's
//! reported characteristics (§2.3, §6), so the figure shapes stay
//! meaningful. Bands are deliberately loose — they catch regressions in
//! the generator or the timing model, not noise.

use event_sneak_peek::prelude::*;

const SCALE: u64 = 300_000;
const SEED: u64 = 42;

fn base_report(profile: &BenchmarkProfile) -> RunReport {
    Simulator::new(SimConfig::base()).run(&profile.scaled(SCALE).build(SEED))
}

#[test]
fn instruction_mpki_band() {
    for p in BenchmarkProfile::all() {
        let r = base_report(&p);
        let mpki = r.l1i_mpki();
        let band = if p.name() == "pixlr" {
            // The data-intensive outlier: small, loopy kernels.
            1.0..14.0
        } else {
            // Paper: 17.5–26 without prefetching.
            9.0..40.0
        };
        assert!(band.contains(&mpki), "{}: I-MPKI {mpki:.1} outside {band:?}", p.name());
    }
}

#[test]
fn data_miss_band() {
    for p in BenchmarkProfile::all() {
        let r = base_report(&p);
        let miss = r.l1d_miss_rate_pct();
        let band = if p.name() == "pixlr" { 5.0..35.0 } else { 2.0..18.0 };
        assert!(band.contains(&miss), "{}: D-miss {miss:.1}% outside {band:?}", p.name());
    }
}

#[test]
fn mispredict_band() {
    for p in BenchmarkProfile::all() {
        let r = base_report(&p);
        let rate = r.mispredict_rate_pct();
        assert!(
            (5.0..20.0).contains(&rate),
            "{}: mispredict {rate:.1}% outside band (paper ~9.9%)",
            p.name()
        );
    }
}

#[test]
fn baseline_cpi_is_stall_dominated() {
    // §2: asynchronous programs run far below peak IPC on conventional
    // cores; perfect components should therefore nearly double (or more)
    // performance.
    for p in BenchmarkProfile::all() {
        let r = base_report(&p);
        let cpi = 1.0 / r.ipc();
        assert!((1.0..6.0).contains(&cpi), "{}: CPI {cpi:.2}", p.name());
    }
}

#[test]
fn headline_speedup_band() {
    // The paper's headline: ESP improves popular web applications by an
    // average of 16% over the prefetching baseline (32% over none).
    let mut over_base = Vec::new();
    for p in BenchmarkProfile::all() {
        let w = p.scaled(SCALE).build(SEED);
        let base = Simulator::new(SimConfig::base()).run(&w);
        let esp = Simulator::new(SimConfig::esp_nl()).run(&w);
        over_base.push(event_sneak_peek::stats::improvement_pct(
            base.busy_cycles(),
            esp.busy_cycles(),
        ));
    }
    let hmean = event_sneak_peek::stats::harmonic_mean_improvement(&over_base);
    assert!(
        (15.0..60.0).contains(&hmean),
        "ESP+NL HMean improvement {hmean:.1}% out of band (paper: 32%)"
    );
}

#[test]
fn pixlr_is_the_odd_one_out() {
    // The paper singles pixlr out: data-intensive, runahead-friendly,
    // least ESP-friendly. Verify the relative character.
    let pixlr = BenchmarkProfile::pixlr().scaled(SCALE).build(SEED);
    let amazon = BenchmarkProfile::amazon().scaled(SCALE).build(SEED);
    let p_base = Simulator::new(SimConfig::base()).run(&pixlr);
    let a_base = Simulator::new(SimConfig::base()).run(&amazon);
    assert!(p_base.l1i_mpki() < a_base.l1i_mpki());
    assert!(p_base.l1d_miss_rate_pct() > a_base.l1d_miss_rate_pct());

    let p_ra = Simulator::new(SimConfig::runahead()).run(&pixlr);
    let p_esp = Simulator::new(SimConfig::esp()).run(&pixlr);
    let ra_gain = event_sneak_peek::stats::improvement_pct(p_base.busy_cycles(), p_ra.busy_cycles());
    let esp_gain =
        event_sneak_peek::stats::improvement_pct(p_base.busy_cycles(), p_esp.busy_cycles());
    assert!(
        ra_gain > esp_gain,
        "on pixlr runahead ({ra_gain:.1}%) should beat bare ESP ({esp_gain:.1}%)"
    );
}
