//! ESPT container conformance suite.
//!
//! The golden fixtures under `tests/fixtures/` are committed byte-exact
//! `.espt` files (written by `repro dump --trace-out` at scale 6000,
//! seed 11). They pin the version-1 container format: this suite fails
//! if the encoder drifts (re-encode stops being byte-identical), if the
//! decoder stops accepting v1 files written by an older build, or if
//! corruption and version skew stop producing the documented structured
//! errors. The full byte layout is specified in `docs/TRACE_FORMAT.md`.

use event_sneak_peek::trace::espt::{self, EsptError};
use event_sneak_peek::trace::Workload;
use std::path::PathBuf;

/// `(file, byte length, FNV-1a-64 of the whole file)` for every golden
/// fixture. The hash covers the footer too, so any regeneration of the
/// fixtures shows up here before it shows up anywhere subtler.
const GOLDEN: &[(&str, usize, u64)] = &[
    ("gdocs.espt", 54_390, 0xf1d1_7510_9bad_264c),
    ("iotfsm.espt", 44_663, 0xc77d_e649_e2f0_b942),
    ("serverasync.espt", 55_228, 0x3d68_66e2_0ef3_2681),
];

/// Scale and seed the fixtures were exported at (pinned in their META
/// sections).
const FIXTURE_SCALE: u64 = 6_000;
const FIXTURE_SEED: u64 = 11;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

fn fixture_bytes(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"))
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Recompute and overwrite the footer checksum so deliberate header
/// mutations (e.g. a bumped version field) reach the field validators
/// instead of tripping the checksum first.
fn reseal(img: &mut [u8]) {
    let n = img.len();
    assert!(n > 8, "image too short to carry a footer");
    let sum = fnv1a64(&img[..n - 8]);
    img[n - 8..].copy_from_slice(&sum.to_le_bytes());
}

/// The committed fixtures are byte-exact (length + whole-file FNV-1a)
/// and still decode into workloads with the pinned provenance.
#[test]
fn golden_fixtures_are_pinned_and_decode() {
    for &(name, len, hash) in GOLDEN {
        let bytes = fixture_bytes(name);
        assert_eq!(bytes.len(), len, "{name}: fixture length drifted");
        assert_eq!(
            fnv1a64(&bytes),
            hash,
            "{name}: fixture bytes drifted (FNV-1a {:#018x})",
            fnv1a64(&bytes)
        );
        let (meta, packed) =
            espt::read(bytes.as_slice()).unwrap_or_else(|e| panic!("{name}: decode failed: {e}"));
        let stem = name.strip_suffix(".espt").unwrap();
        assert_eq!(meta.profile, stem, "{name}: META profile");
        assert_eq!(meta.scale, FIXTURE_SCALE, "{name}: META scale");
        assert_eq!(meta.seed, FIXTURE_SEED, "{name}: META seed");
        assert!(!packed.events().is_empty(), "{name}: no events");
    }
}

/// decode → encode reproduces every fixture byte-for-byte: the writer
/// has no hidden nondeterminism and the reader loses no information.
#[test]
fn re_encode_is_byte_identical() {
    for &(name, _, _) in GOLDEN {
        let bytes = fixture_bytes(name);
        let (meta, packed) = espt::read(bytes.as_slice()).expect("golden fixture must decode");
        let mut out = Vec::new();
        let written = espt::write(&mut out, &meta, &packed).expect("re-encode failed");
        assert_eq!(written as usize, out.len(), "{name}: write() return value");
        assert_eq!(out, bytes, "{name}: re-encode is not byte-identical");
    }
}

/// A file declaring a future format version is rejected with a
/// diagnostic naming both the expected and the found version — not
/// misparsed, not accepted.
#[test]
fn future_version_is_rejected_naming_both_versions() {
    let mut img = fixture_bytes(GOLDEN[0].0);
    // Version field sits at bytes 4..8 of the header (after the magic).
    img[4..8].copy_from_slice(&2u32.to_le_bytes());
    reseal(&mut img);
    match espt::read(img.as_slice()) {
        Err(EsptError::UnsupportedVersion { expected, found }) => {
            assert_eq!(expected, espt::VERSION);
            assert_eq!(found, 2);
            let msg = EsptError::UnsupportedVersion { expected, found }.to_string();
            assert!(
                msg.contains("expected 1") && msg.contains("found 2"),
                "diagnostic must name both versions: {msg}"
            );
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// Flipping a payload byte is caught by the footer checksum before the
/// payload is ever interpreted.
#[test]
fn corrupt_payload_is_rejected_by_checksum() {
    let mut img = fixture_bytes(GOLDEN[1].0);
    let mid = img.len() / 2;
    img[mid] ^= 0x40;
    match espt::read(img.as_slice()) {
        Err(EsptError::ChecksumMismatch { computed, stored }) => {
            assert_ne!(computed, stored);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

/// Truncation anywhere — mid-header or mid-payload — comes back as a
/// structured `Truncated` (or `Io` for an empty reader), never a panic.
#[test]
fn truncation_is_rejected_everywhere() {
    let img = fixture_bytes(GOLDEN[2].0);
    for keep in [0usize, 3, 15, 63, 64, 200, img.len() / 2, img.len() - 1] {
        match espt::read(&img[..keep]) {
            Err(EsptError::Truncated { .. }) | Err(EsptError::Io(_)) => {}
            Err(EsptError::BadMagic { .. }) if keep < 4 => {}
            other => panic!("prefix of {keep} bytes: expected Truncated, got {other:?}"),
        }
    }
}

/// Bytes after the footer are reported, not silently ignored.
#[test]
fn trailing_bytes_are_rejected() {
    let mut img = fixture_bytes(GOLDEN[0].0);
    img.extend_from_slice(&[0xEE; 7]);
    match espt::read(img.as_slice()) {
        Err(EsptError::TrailingBytes { extra }) => assert_eq!(extra, 7),
        other => panic!("expected TrailingBytes, got {other:?}"),
    }
}

/// A wrong magic is diagnosed as "not an ESPT file", echoing the bytes
/// actually found.
#[test]
fn wrong_magic_is_rejected() {
    let mut img = fixture_bytes(GOLDEN[0].0);
    img[..4].copy_from_slice(b"ELFF");
    reseal(&mut img);
    match espt::read(img.as_slice()) {
        Err(EsptError::BadMagic { found }) => assert_eq!(&found, b"ELFF"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}
