//! Randomized tests for the ESP prediction lists, seeded with the
//! in-repo deterministic RNG (`esp_types::rng`) instead of an external
//! property-test framework — the build runs offline and fixed seeds make
//! failures exactly reproducible.

use event_sneak_peek::lists::{AddrList, BList};
use event_sneak_peek::trace::Instr;
use event_sneak_peek::types::{Addr, LineAddr, Rng as _, Xoshiro256pp};

/// Recorded address runs decode back to a subsequence of the input:
/// every line covered by a record was actually recorded, in order, with
/// non-decreasing instruction counts.
#[test]
fn addr_list_decodes_faithfully() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x115_0001);
    for case in 0..128 {
        let len = rng.range(1, 400) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(100_000)).collect();
        let mut list = AddrList::new(499);
        let mut accepted: Vec<u64> = Vec::new();
        for (i, &l) in lines.iter().enumerate() {
            if list.record(LineAddr::new(l), i as u64 * 3) {
                accepted.push(l);
            }
        }
        // Every decoded line must appear in the accepted input, and the
        // record icounts must be monotonic.
        let mut last_icount = 0;
        for rec in list.records() {
            assert!(rec.icount >= last_icount, "case {case}");
            last_icount = rec.icount;
            for line in rec.lines() {
                assert!(
                    accepted.contains(&line.as_u64()),
                    "case {case}: decoded line {} never recorded",
                    line.as_u64()
                );
            }
        }
        // Bit accounting is within capacity.
        assert!(list.used_bits() <= list.capacity_bits(), "case {case}");
    }
}

/// Promotion never loses records and never shrinks capacity usage.
#[test]
fn addr_list_promotion_preserves() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x115_0002);
    for case in 0..128 {
        let len = rng.range(1, 200) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(5_000)).collect();
        let mut list = AddrList::new(68);
        for (i, &l) in lines.iter().enumerate() {
            list.record(LineAddr::new(l), i as u64);
        }
        let before: Vec<_> = list.records().to_vec();
        let used = list.used_bits();
        let promoted = list.promoted(499);
        assert_eq!(promoted.records(), &before[..], "case {case}");
        assert_eq!(promoted.used_bits(), used, "case {case}");
        assert!(!promoted.is_full(), "case {case}");
    }
}

/// The list never accepts more entries than its bit capacity allows
/// (worst case: every entry is a 3x19-bit escape).
#[test]
fn addr_list_capacity_bound() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x115_0003);
    for case in 0..128 {
        let seed = rng.below(1_000);
        let mut list = AddrList::new(68); // 544 bits
        let mut accepted = 0u64;
        // Far-apart lines force escape entries.
        for i in 0..200u64 {
            if list.record(LineAddr::new(seed + i * 100_000), i) {
                accepted += 1;
            }
        }
        // 544 / 19 = 28 entries absolute upper bound.
        assert!(accepted <= 28, "case {case}: accepted {accepted}");
        assert!(list.is_full(), "case {case}");
    }
}

/// B-list records preserve branch pcs, directions, and icounts.
#[test]
fn blist_decodes_faithfully() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x115_0004);
    for case in 0..128 {
        let len = rng.range(1, 200) as usize;
        let branches: Vec<(u64, bool)> =
            (0..len).map(|_| (rng.below(1_000), rng.chance(0.5))).collect();
        let mut b = BList::new(566, 41);
        let mut accepted = Vec::new();
        for (i, &(pc_slot, taken)) in branches.iter().enumerate() {
            let pc = Addr::new(0x1000 + pc_slot * 4);
            let instr = Instr::cond_branch(pc, taken, Addr::new(0x9000));
            if b.record(&instr, i as u64) {
                accepted.push((pc, taken, i as u64));
            }
        }
        assert_eq!(b.records().len(), accepted.len(), "case {case}");
        for (rec, (pc, taken, icount)) in b.records().iter().zip(&accepted) {
            assert_eq!(rec.pc, *pc, "case {case}");
            assert_eq!(rec.taken, *taken, "case {case}");
            assert_eq!(rec.icount, *icount, "case {case}");
        }
    }
}

/// Indirect targets beyond the B-List-Target capacity are dropped but
/// directions keep recording.
#[test]
fn blist_target_capacity() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x115_0005);
    for case in 0..128 {
        let n = rng.range(1, 120) as usize;
        let mut b = BList::new(10_000, 41); // huge direction list, paper-size target list
        for i in 0..n as u64 {
            let instr = Instr::indirect_call(Addr::new(0x1000 + i * 8), Addr::new(0x2000 + i * 8));
            assert!(b.record(&instr, i), "case {case}");
        }
        let with_target = b.records().iter().filter(|r| r.target.is_some()).count();
        // 41 B = 328 bits; near targets cost 17 bits → at most 19 targets.
        assert!(with_target <= 19, "case {case}: targets {with_target}");
        assert_eq!(b.records().len(), n, "case {case}");
    }
}
