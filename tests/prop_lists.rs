//! Property tests for the ESP prediction lists.

use event_sneak_peek::lists::{AddrList, BList};
use event_sneak_peek::trace::Instr;
use event_sneak_peek::types::{Addr, LineAddr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Recorded address runs decode back to a subsequence of the input:
    /// every line covered by a record was actually recorded, in order,
    /// with non-decreasing instruction counts.
    #[test]
    fn addr_list_decodes_faithfully(
        lines in prop::collection::vec(0u64..100_000, 1..400),
    ) {
        let mut list = AddrList::new(499);
        let mut accepted: Vec<u64> = Vec::new();
        for (i, &l) in lines.iter().enumerate() {
            if list.record(LineAddr::new(l), i as u64 * 3) {
                accepted.push(l);
            }
        }
        // Every decoded line must appear in the accepted input, and the
        // record icounts must be monotonic.
        let mut last_icount = 0;
        for rec in list.records() {
            prop_assert!(rec.icount >= last_icount);
            last_icount = rec.icount;
            for line in rec.lines() {
                prop_assert!(
                    accepted.contains(&line.as_u64()),
                    "decoded line {} never recorded", line.as_u64()
                );
            }
        }
        // Bit accounting is within capacity.
        prop_assert!(list.used_bits() <= list.capacity_bits());
    }

    /// Promotion never loses records and never shrinks capacity usage.
    #[test]
    fn addr_list_promotion_preserves(lines in prop::collection::vec(0u64..5_000, 1..200)) {
        let mut list = AddrList::new(68);
        for (i, &l) in lines.iter().enumerate() {
            list.record(LineAddr::new(l), i as u64);
        }
        let before: Vec<_> = list.records().to_vec();
        let used = list.used_bits();
        let promoted = list.promoted(499);
        prop_assert_eq!(promoted.records(), &before[..]);
        prop_assert_eq!(promoted.used_bits(), used);
        prop_assert!(!promoted.is_full());
    }

    /// The list never accepts more entries than its bit capacity allows
    /// (worst case: every entry is a 3x19-bit escape).
    #[test]
    fn addr_list_capacity_bound(seed in 0u64..1_000) {
        let mut list = AddrList::new(68); // 544 bits
        let mut accepted = 0u64;
        // Far-apart lines force escape entries.
        for i in 0..200u64 {
            if list.record(LineAddr::new(seed + i * 100_000), i) {
                accepted += 1;
            }
        }
        // 544 / 19 = 28 entries absolute upper bound.
        prop_assert!(accepted <= 28, "accepted {}", accepted);
        prop_assert!(list.is_full());
    }

    /// B-list records preserve branch pcs, directions, and icounts.
    #[test]
    fn blist_decodes_faithfully(
        branches in prop::collection::vec((0u64..1_000u64, any::<bool>()), 1..200),
    ) {
        let mut b = BList::new(566, 41);
        let mut accepted = Vec::new();
        for (i, &(pc_slot, taken)) in branches.iter().enumerate() {
            let pc = Addr::new(0x1000 + pc_slot * 4);
            let instr = Instr::cond_branch(pc, taken, Addr::new(0x9000));
            if b.record(&instr, i as u64) {
                accepted.push((pc, taken, i as u64));
            }
        }
        prop_assert_eq!(b.records().len(), accepted.len());
        for (rec, (pc, taken, icount)) in b.records().iter().zip(&accepted) {
            prop_assert_eq!(rec.pc, *pc);
            prop_assert_eq!(rec.taken, *taken);
            prop_assert_eq!(rec.icount, *icount);
        }
    }

    /// Indirect targets beyond the B-List-Target capacity are dropped but
    /// directions keep recording.
    #[test]
    fn blist_target_capacity(n in 1usize..120) {
        let mut b = BList::new(10_000, 41); // huge direction list, paper-size target list
        for i in 0..n as u64 {
            let instr = Instr::indirect_call(Addr::new(0x1000 + i * 8), Addr::new(0x2000 + i * 8));
            prop_assert!(b.record(&instr, i));
        }
        let with_target = b.records().iter().filter(|r| r.target.is_some()).count();
        // 41 B = 328 bits; near targets cost 17 bits → at most 19 targets.
        prop_assert!(with_target <= 19, "targets {}", with_target);
        prop_assert_eq!(b.records().len(), n);
    }
}
