//! Property tests: the set-associative cache against a reference model.

use event_sneak_peek::mem::{AccessResult, CacheConfig, SetAssocCache};
use event_sneak_peek::types::{Cycle, LineAddr};
use proptest::prelude::*;
use std::collections::HashMap;

/// A trivially-correct reference: per-set LRU lists over a hash map.
struct ReferenceCache {
    sets: usize,
    ways: usize,
    // set index -> ordered (MRU first) list of tags.
    contents: HashMap<u64, Vec<u64>>,
}

impl ReferenceCache {
    fn new(sets: usize, ways: usize) -> Self {
        ReferenceCache { sets, ways, contents: HashMap::new() }
    }

    fn set_and_tag(&self, line: u64) -> (u64, u64) {
        (line % self.sets as u64, line / self.sets as u64)
    }

    fn access(&mut self, line: u64) -> bool {
        let (s, t) = self.set_and_tag(line);
        let set = self.contents.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&x| x == t) {
            set.remove(pos);
            set.insert(0, t);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) {
        let (s, t) = self.set_and_tag(line);
        let ways = self.ways;
        let set = self.contents.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&x| x == t) {
            set.remove(pos);
        } else if set.len() == ways {
            set.pop();
        }
        set.insert(0, t);
    }
}

fn small_cache() -> SetAssocCache {
    // 8 sets x 4 ways.
    SetAssocCache::new(CacheConfig {
        name: "prop".into(),
        size_bytes: 8 * 4 * 64,
        ways: 4,
        line_bytes: 64,
        hit_latency: 2,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Demand-access-with-fill sequences hit/miss identically to the
    /// reference LRU model.
    #[test]
    fn matches_reference_lru(lines in prop::collection::vec(0u64..64, 1..300)) {
        let mut cache = small_cache();
        let mut reference = ReferenceCache::new(8, 4);
        for (i, &l) in lines.iter().enumerate() {
            let now = Cycle::new(i as u64 * 10);
            let got = cache.access(LineAddr::new(l), now).is_hit();
            let want = reference.access(l);
            prop_assert_eq!(got, want, "access #{} line {}", i, l);
            if !got {
                cache.fill(LineAddr::new(l), now, now, false);
                reference.fill(l);
            }
        }
    }

    /// Occupancy never exceeds capacity and probes agree with accesses.
    #[test]
    fn occupancy_and_probe_consistency(lines in prop::collection::vec(0u64..1000, 1..200)) {
        let mut cache = small_cache();
        for (i, &l) in lines.iter().enumerate() {
            let now = Cycle::new(i as u64);
            cache.fill(LineAddr::new(l), now, now, false);
            prop_assert!(cache.occupancy() <= 32);
            prop_assert!(cache.probe(LineAddr::new(l)), "just-filled line must be resident");
        }
    }

    /// A partial hit is only reported while the fill is in flight, and
    /// its latency never exceeds the fill distance.
    #[test]
    fn partial_hit_latencies(delay in 1u64..500, probe_at in 0u64..600) {
        let mut cache = small_cache();
        let l = LineAddr::new(7);
        cache.fill(l, Cycle::ZERO, Cycle::new(delay), false);
        match cache.access(l, Cycle::new(probe_at)) {
            AccessResult::Hit(lat) => {
                prop_assert!(probe_at >= delay);
                prop_assert_eq!(lat, 2);
            }
            AccessResult::PartialHit(lat) => {
                prop_assert!(probe_at < delay);
                prop_assert!(lat >= 2);
                prop_assert!(lat <= delay.max(2));
            }
            AccessResult::Miss => prop_assert!(false, "line must be resident"),
        }
    }

    /// Invalidation removes exactly the target line.
    #[test]
    fn invalidate_is_precise(a in 0u64..64, b in 0u64..64) {
        prop_assume!(a != b);
        let mut cache = small_cache();
        cache.fill(LineAddr::new(a), Cycle::ZERO, Cycle::ZERO, false);
        cache.fill(LineAddr::new(b), Cycle::ZERO, Cycle::ZERO, false);
        prop_assert!(cache.invalidate(LineAddr::new(a)));
        prop_assert!(!cache.probe(LineAddr::new(a)));
        prop_assert!(cache.probe(LineAddr::new(b)));
    }
}
