//! Randomized tests of the set-associative cache against a reference
//! model. Seeded with the in-repo deterministic RNG (`esp_types::rng`)
//! instead of an external property-test framework: the build environment
//! has no network access to a crate registry, and fixed seeds make every
//! failure exactly reproducible.

use event_sneak_peek::mem::{AccessResult, CacheConfig, SetAssocCache};
use event_sneak_peek::types::{Cycle, LineAddr, Rng as _, Xoshiro256pp};
use std::collections::HashMap;

/// A trivially-correct reference: per-set LRU lists over a hash map.
struct ReferenceCache {
    sets: usize,
    ways: usize,
    // set index -> ordered (MRU first) list of tags.
    contents: HashMap<u64, Vec<u64>>,
}

impl ReferenceCache {
    fn new(sets: usize, ways: usize) -> Self {
        ReferenceCache { sets, ways, contents: HashMap::new() }
    }

    fn set_and_tag(&self, line: u64) -> (u64, u64) {
        (line % self.sets as u64, line / self.sets as u64)
    }

    fn access(&mut self, line: u64) -> bool {
        let (s, t) = self.set_and_tag(line);
        let set = self.contents.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&x| x == t) {
            set.remove(pos);
            set.insert(0, t);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) {
        let (s, t) = self.set_and_tag(line);
        let ways = self.ways;
        let set = self.contents.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&x| x == t) {
            set.remove(pos);
        } else if set.len() == ways {
            set.pop();
        }
        set.insert(0, t);
    }
}

fn small_cache() -> SetAssocCache {
    // 8 sets x 4 ways.
    SetAssocCache::new(CacheConfig {
        name: "prop".into(),
        size_bytes: 8 * 4 * 64,
        ways: 4,
        line_bytes: 64,
        hit_latency: 2,
    })
}

/// Demand-access-with-fill sequences hit/miss identically to the
/// reference LRU model.
#[test]
fn matches_reference_lru() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x000C_AC4E_0001);
    for case in 0..64 {
        let len = rng.range(1, 300) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(64)).collect();
        let mut cache = small_cache();
        let mut reference = ReferenceCache::new(8, 4);
        for (i, &l) in lines.iter().enumerate() {
            let now = Cycle::new(i as u64 * 10);
            let got = cache.access(LineAddr::new(l), now).is_hit();
            let want = reference.access(l);
            assert_eq!(got, want, "case {case} access #{i} line {l}");
            if !got {
                cache.fill(LineAddr::new(l), now, now, false);
                reference.fill(l);
            }
        }
    }
}

/// Occupancy never exceeds capacity and probes agree with accesses.
#[test]
fn occupancy_and_probe_consistency() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x000C_AC4E_0002);
    for case in 0..64 {
        let len = rng.range(1, 200) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(1000)).collect();
        let mut cache = small_cache();
        for (i, &l) in lines.iter().enumerate() {
            let now = Cycle::new(i as u64);
            cache.fill(LineAddr::new(l), now, now, false);
            assert!(cache.occupancy() <= 32, "case {case}");
            assert!(
                cache.probe(LineAddr::new(l)),
                "case {case}: just-filled line {l} must be resident"
            );
        }
    }
}

/// A partial hit is only reported while the fill is in flight, and its
/// latency never exceeds the fill distance.
#[test]
fn partial_hit_latencies() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x000C_AC4E_0003);
    for case in 0..256 {
        let delay = rng.range(1, 500);
        let probe_at = rng.below(600);
        let mut cache = small_cache();
        let l = LineAddr::new(7);
        cache.fill(l, Cycle::ZERO, Cycle::new(delay), false);
        match cache.access(l, Cycle::new(probe_at)) {
            AccessResult::Hit(lat) => {
                assert!(probe_at >= delay, "case {case}");
                assert_eq!(lat, 2, "case {case}");
            }
            AccessResult::PartialHit(lat) => {
                assert!(probe_at < delay, "case {case}");
                assert!(lat >= 2, "case {case}");
                assert!(lat <= delay.max(2), "case {case}");
            }
            AccessResult::Miss => panic!("case {case}: line must be resident"),
        }
    }
}

/// Invalidation removes exactly the target line.
#[test]
fn invalidate_is_precise() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x000C_AC4E_0004);
    for case in 0..64 {
        let a = rng.below(64);
        let b = (a + rng.range(1, 64)) % 64; // distinct from a by construction
        assert_ne!(a, b);
        let mut cache = small_cache();
        cache.fill(LineAddr::new(a), Cycle::ZERO, Cycle::ZERO, false);
        cache.fill(LineAddr::new(b), Cycle::ZERO, Cycle::ZERO, false);
        assert!(cache.invalidate(LineAddr::new(a)), "case {case}");
        assert!(!cache.probe(LineAddr::new(a)), "case {case}");
        assert!(cache.probe(LineAddr::new(b)), "case {case}");
    }
}
