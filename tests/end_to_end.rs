//! Cross-crate integration tests: full simulations over generated
//! workloads, asserting the figure-level orderings the paper reports.

use event_sneak_peek::prelude::*;
use event_sneak_peek::stats::improvement_pct;

fn run(cfg: SimConfig, w: &GeneratedWorkload) -> RunReport {
    Simulator::new(cfg).run(w)
}

#[test]
fn fig9_orderings_hold_per_profile() {
    for profile in BenchmarkProfile::all() {
        let w = profile.scaled(150_000).build(9);
        let base = run(SimConfig::base(), &w);
        let nl = run(SimConfig::next_line(), &w);
        let esp = run(SimConfig::esp_nl(), &w);
        let name = profile.name();
        assert!(
            nl.busy_cycles() < base.busy_cycles(),
            "{name}: NL must beat base"
        );
        assert!(
            esp.busy_cycles() < nl.busy_cycles(),
            "{name}: ESP+NL must beat NL ({} vs {})",
            esp.busy_cycles(),
            nl.busy_cycles()
        );
    }
}

#[test]
fn perfect_all_bounds_everything() {
    let w = BenchmarkProfile::cnn().scaled(150_000).build(3);
    let perfect = run(
        SimConfig::perfect(event_sneak_peek::uarch::PerfectFlags::all()),
        &w,
    );
    for cfg in [
        SimConfig::base(),
        SimConfig::next_line_stride(),
        SimConfig::runahead_nl(),
        SimConfig::esp_nl(),
    ] {
        let r = run(cfg, &w);
        assert!(perfect.busy_cycles() < r.busy_cycles());
    }
}

#[test]
fn esp_reduces_all_three_bottlenecks() {
    let w = BenchmarkProfile::facebook().scaled(200_000).build(5);
    let nl = run(SimConfig::next_line(), &w);
    let esp = run(SimConfig::esp_nl(), &w);
    assert!(esp.l1i_mpki() < nl.l1i_mpki(), "instruction side");
    assert!(
        esp.l1d_miss_rate_pct() < nl.l1d_miss_rate_pct(),
        "data side"
    );
    assert!(
        esp.mispredict_rate_pct() < nl.mispredict_rate_pct(),
        "branch side"
    );
}

#[test]
fn runahead_is_data_side_only() {
    let w = BenchmarkProfile::amazon().scaled(150_000).build(4);
    let base = run(SimConfig::base(), &w);
    let ra = run(SimConfig::runahead(), &w);
    // Strong D-side effect...
    assert!(ra.l1d_miss_rate_pct() < base.l1d_miss_rate_pct());
    // ...but only a marginal I-side one (runahead stalls on I-misses).
    let i_cut = (base.l1i_mpki() - ra.l1i_mpki()) / base.l1i_mpki();
    let d_cut = (base.l1d_miss_rate_pct() - ra.l1d_miss_rate_pct()) / base.l1d_miss_rate_pct();
    assert!(
        d_cut > i_cut,
        "runahead must help data ({d_cut:.3}) more than instructions ({i_cut:.3})"
    );
}

#[test]
fn ideal_esp_bounds_real_esp() {
    let w = BenchmarkProfile::bing().scaled(150_000).build(6);
    let real = run(SimConfig::esp_i_nl_i(), &w);
    let ideal = run(SimConfig::ideal_esp_i_nl_i(), &w);
    assert!(ideal.l1i_mpki() <= real.l1i_mpki());
}

#[test]
fn full_run_is_deterministic_across_simulators() {
    let w = BenchmarkProfile::gdocs().scaled(120_000).build(11);
    let a = run(SimConfig::esp_nl(), &w);
    let b = run(SimConfig::esp_nl(), &w);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.engine, b.engine);
    assert_eq!(a.esp, b.esp);
    assert_eq!(a.replay, b.replay);
}

#[test]
fn esp_pre_executes_a_meaningful_fraction() {
    let w = BenchmarkProfile::amazon().scaled(250_000).build(12);
    let esp = run(SimConfig::esp_nl(), &w);
    let pct = esp.extra_instr_pct();
    assert!(
        (2.0..60.0).contains(&pct),
        "pre-executed fraction {pct:.1}% out of plausible range"
    );
    assert!(esp.esp.windows > 100, "windows={}", esp.esp.windows);
    assert!(esp.replay.iprefetches > 0);
    assert!(esp.replay.btrains > 0);
}

#[test]
fn blist_improves_over_no_blist() {
    let w = BenchmarkProfile::cnn().scaled(200_000).build(13);
    let without = run(SimConfig::esp_bp_separate_context(), &w);
    let with = run(SimConfig::esp_nl(), &w);
    assert!(with.mispredict_rate_pct() <= without.mispredict_rate_pct());
}

#[test]
fn shared_bp_context_pollutes() {
    let w = BenchmarkProfile::amazon().scaled(150_000).build(14);
    let shared = run(SimConfig::esp_bp_shared(), &w);
    let separate = run(SimConfig::esp_bp_separate_context(), &w);
    assert!(
        separate.mispredict_rate_pct() < shared.mispredict_rate_pct(),
        "separate PIR {} must beat shared {}",
        separate.mispredict_rate_pct(),
        shared.mispredict_rate_pct()
    );
}

#[test]
fn depth_probe_collects_decaying_working_sets() {
    let w = BenchmarkProfile::gmaps().scaled(200_000).build(15);
    let r = run(SimConfig::esp_depth_probe(), &w);
    let ws = r.working_sets.expect("probe collects");
    let p95 = |s: &[usize]| event_sneak_peek::core::percentile(s, 95.0);
    let normal = p95(&ws.normal_i);
    let esp1 = p95(&ws.by_depth_i[0]);
    assert!(normal > esp1, "normal {normal} !> esp1 {esp1}");
    // Deep modes see less than ESP-1 at the 95th percentile.
    let esp4 = p95(&ws.by_depth_i[3]);
    assert!(esp4 <= esp1, "esp4 {esp4} !<= esp1 {esp1}");
}

#[test]
fn energy_overhead_is_bounded() {
    let w = BenchmarkProfile::facebook().scaled(200_000).build(16);
    let nl = run(SimConfig::next_line(), &w);
    let esp = run(SimConfig::esp_nl(), &w);
    let rel = esp.energy.relative_to(&nl.energy).total();
    assert!(
        (0.95..1.25).contains(&rel),
        "ESP relative energy {rel:.3} out of band"
    );
}

#[test]
fn improvement_metric_is_consistent() {
    let w = BenchmarkProfile::bing().scaled(100_000).build(17);
    let base = run(SimConfig::base(), &w);
    let esp = run(SimConfig::esp_nl(), &w);
    let imp = improvement_pct(base.busy_cycles(), esp.busy_cycles());
    let ratio = base.busy_cycles() as f64 / esp.busy_cycles() as f64;
    assert!((imp - (ratio - 1.0) * 100.0).abs() < 1e-9);
}

#[test]
fn all_events_run_exactly_once() {
    let w = BenchmarkProfile::pixlr().scaled(100_000).build(18);
    for cfg in [SimConfig::base(), SimConfig::esp_nl(), SimConfig::runahead_nl()] {
        let r = run(cfg, &w);
        assert_eq!(r.events_run, w.events().len() as u64);
        let expected = w.schedule().total_instructions() + 70 * r.events_run;
        assert_eq!(r.engine.retired, expected);
    }
}
