//! Property tests for the two extra workload families (`serverasync`,
//! `iotfsm`): generation is byte-deterministic — same profile, scale and
//! seed produce the identical `.espt` container — and the statistical
//! shape of what comes out stays inside the envelope the profile's own
//! parameters declare, across many seeds. Seeded with the in-repo
//! deterministic RNG, like the other `prop_*` suites.

use event_sneak_peek::trace::espt::{self, TraceMeta};
use event_sneak_peek::trace::{record_stream, InstrKind, Workload};
use event_sneak_peek::types::{Rng as _, Xoshiro256pp};
use event_sneak_peek::workload::BenchmarkProfile;

const SCALE: u64 = 60_000;

fn extra_families() -> Vec<BenchmarkProfile> {
    let extras = BenchmarkProfile::extras();
    assert_eq!(
        extras.iter().map(|p| p.name()).collect::<Vec<_>>(),
        ["serverasync", "iotfsm"]
    );
    extras
}

fn seeds(label: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::seed_from_u64(0x4AA0_0000 + label);
    (0..8).map(|_| rng.below(100_000)).collect()
}

/// Serialise a freshly generated workload to ESPT bytes.
fn espt_bytes(profile: &BenchmarkProfile, seed: u64) -> Vec<u8> {
    let packed = profile.scaled(SCALE).build(seed).materialise();
    let meta = TraceMeta { profile: profile.name().to_string(), scale: SCALE, seed };
    let mut out = Vec::new();
    espt::write(&mut out, &meta, &packed).expect("encode");
    out
}

/// Same (profile, scale, seed) → identical container bytes; different
/// seeds → different bytes. This is the generation half of the
/// conformance story: the golden fixtures only stay valid if the
/// pipeline from parameters to packed bytes has no hidden state.
#[test]
fn extra_families_generate_byte_deterministically() {
    for fam in extra_families() {
        let picked = seeds(1);
        let first = espt_bytes(&fam, picked[0]);
        assert_eq!(
            first,
            espt_bytes(&fam, picked[0]),
            "{}: same seed produced different bytes",
            fam.name()
        );
        let other = espt_bytes(&fam, picked[0] + 1);
        assert_ne!(first, other, "{}: seed does not reach the generator", fam.name());

        // And the bytes decode back to the same provenance and shape.
        let (meta, packed) = espt::read(first.as_slice()).expect("decode");
        assert_eq!(meta.profile, fam.name());
        assert_eq!(meta.scale, SCALE);
        assert_eq!(meta.seed, picked[0]);
        assert!(!packed.events().is_empty());
    }
}

/// Across seeds, every generated trace stays inside the envelope its
/// profile declares: event lengths cluster around the profile mean, the
/// load/store mix tracks the configured fractions, event kinds stay
/// within the declared pool, and per-event budgets are exact.
#[test]
fn extra_family_distributions_stay_in_envelope() {
    for fam in extra_families() {
        let scaled = fam.scaled(SCALE);
        let params = scaled.params().clone();
        let mut pooled_lens: Vec<u64> = Vec::new();
        for seed in seeds(2) {
            let w = scaled.build(seed);
            let events = w.events();
            let what = format!("{} seed {seed}", fam.name());
            assert!(events.len() >= 4, "{what}: degenerate event count");
            pooled_lens.extend(events.iter().map(|e| e.approx_len));

            // Structural budget invariants from the schedule builder:
            // events are appended until the target is met, so the total
            // covers the target and overshoots by at most one event;
            // individual lengths respect the documented clamp.
            let total: u64 = events.iter().map(|e| e.approx_len).sum();
            let longest = events.iter().map(|e| e.approx_len).max().unwrap();
            assert!(total >= SCALE, "{what}: budget not met ({total} < {SCALE})");
            assert!(
                total - longest < SCALE,
                "{what}: overshoot exceeds one event ({total} vs {SCALE})"
            );
            for e in events {
                assert!(
                    e.approx_len >= 200 && e.approx_len <= 50 * params.mean_event_len,
                    "{what}: event length {} outside documented clamp",
                    e.approx_len
                );
            }

            // Kinds drawn from the declared pool, with some diversity.
            let mut kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
            kinds.sort();
            kinds.dedup();
            assert!(
                kinds.len() >= 2 && kinds.len() <= params.event_kinds as usize,
                "{what}: {} distinct kinds vs declared {}",
                kinds.len(),
                params.event_kinds
            );

            // Instruction mix pooled over several events vs the
            // configured fractions. Individual events skew hard (a
            // streaming or loop-heavy event looks nothing like the
            // average), so the sample spans events and the envelope is
            // generous — a mis-wired fraction escapes it, noise does not.
            let mut sample = Vec::new();
            for ev in events.iter().take(4) {
                sample.extend(record_stream(&mut *w.actual_stream(ev.id), 4_000));
            }
            let n = sample.len() as f64;
            let loads =
                sample.iter().filter(|i| matches!(i.kind, InstrKind::Load { .. })).count() as f64;
            let stores =
                sample.iter().filter(|i| matches!(i.kind, InstrKind::Store { .. })).count() as f64;
            for (label, got, want) in
                [("load", loads / n, params.load_frac), ("store", stores / n, params.store_frac)]
            {
                assert!(
                    got >= want * 0.3 && got <= want * 2.5,
                    "{what}: {label} fraction {got:.3} outside envelope of {want:.3}"
                );
            }

            // Budgets are exact for the new parameterisations too.
            for ev in events.iter().take(2) {
                let got = record_stream(&mut *w.actual_stream(ev.id), usize::MAX);
                assert_eq!(got.len() as u64, ev.approx_len, "{what}: inexact budget");
            }
        }

        // Event lengths are log-normal, so per-seed sample *means* swing
        // wildly — but the pooled *median* is stable. It must sit near
        // the distribution's analytic median, mean * exp(-sigma^2 / 2).
        pooled_lens.sort_unstable();
        let median = pooled_lens[pooled_lens.len() / 2] as f64;
        let expected =
            params.mean_event_len as f64 * (-params.event_len_sigma.powi(2) / 2.0).exp();
        assert!(
            median >= expected / 2.5 && median <= expected * 2.5,
            "{}: pooled median {median:.0} outside envelope of {expected:.0}",
            fam.name()
        );
    }
}

/// The two families sit on opposite ends of the event-length axis, as
/// designed: server-async events are short completions, IoT events are
/// long filter bursts. The check runs at a scale above `scaled()`'s
/// 24-event cap (which deliberately flattens means at small scales) so
/// a calibration regression that collapses the families fails here.
#[test]
fn extra_families_are_statistically_distinct() {
    let fams = extra_families();
    let (server, iot) = (&fams[0], &fams[1]);
    assert!(server.paper_mean_event_len() * 2 < iot.paper_mean_event_len());
    let wide_scale = iot.paper_mean_event_len() * 24;
    for seed in seeds(3).into_iter().take(2) {
        let median = |p: &BenchmarkProfile| {
            let w = p.scaled(wide_scale).build(seed);
            let mut lens: Vec<u64> = w.events().iter().map(|e| e.approx_len).collect();
            lens.sort_unstable();
            lens[lens.len() / 2]
        };
        assert!(
            median(server) * 2 < median(iot),
            "seed {seed}: event-length separation collapsed"
        );
    }
}
