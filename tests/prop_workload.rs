//! Randomized tests on the workload generator and the predictor's
//! robustness under arbitrary inputs. Seeded with the in-repo
//! deterministic RNG (`esp_types::rng`) instead of an external
//! property-test framework — the build runs offline and fixed seeds make
//! failures exactly reproducible.

use event_sneak_peek::branch::{BranchConfig, BranchPredictor, ContextPolicy, PredictorContext};
use event_sneak_peek::trace::{record_stream, Instr, Workload};
use event_sneak_peek::types::{Addr, Rng as _, Xoshiro256pp};
use event_sneak_peek::workload::{GeneratedWorkload, WorkloadParams};

fn small_workload(seed: u64) -> GeneratedWorkload {
    let mut p = WorkloadParams::web_default();
    p.target_instructions = 30_000;
    p.mean_event_len = 3_000;
    p.code_footprint_bytes = 256 * 1024;
    GeneratedWorkload::generate(p, seed)
}

/// 16 workload seeds drawn deterministically from a fixed meta-seed.
fn workload_seeds(label: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3091_0000 + label);
    (0..16).map(|_| rng.below(10_000)).collect()
}

/// For any seed: streams regenerate identically, control flow is
/// consistent, and forked cursors continue exactly like the original.
#[test]
fn walks_are_deterministic_and_consistent() {
    for seed in workload_seeds(1) {
        let w = small_workload(seed);
        let id = w.events()[0].id;
        let a = record_stream(&mut *w.actual_stream(id), 2_000);
        let b = record_stream(&mut *w.actual_stream(id), 2_000);
        assert_eq!(&a, &b, "seed {seed}");
        // Control-flow consistency.
        for pair in a.windows(2) {
            assert_eq!(pair[0].next_pc(), pair[1].pc, "seed {seed}");
        }
        // Fork mid-stream and compare continuations.
        let mut s = w.actual_stream(id);
        record_stream(&mut *s, 500);
        let rest_fork = {
            let mut forked = s.fork();
            record_stream(&mut *forked, 500)
        };
        let rest_orig = record_stream(&mut *s, 500);
        assert_eq!(rest_orig, rest_fork, "seed {seed}");
    }
}

/// Speculative views match actual views exactly up to the declared
/// divergence point for every event.
#[test]
fn speculative_views_match_prefix() {
    for seed in workload_seeds(2) {
        let w = small_workload(seed);
        for ev in w.events().iter().take(4) {
            let detail = &w.schedule().details()[ev.id.index() as usize];
            let a = record_stream(&mut *w.actual_stream(ev.id), 1_500);
            let s = record_stream(&mut *w.speculative_stream(ev.id), 1_500);
            let check = match detail.diverge_at {
                None => a.len(),
                Some(at) => (at as usize).min(a.len()),
            };
            assert_eq!(&a[..check], &s[..check], "seed {seed}");
        }
    }
}

/// Event budgets are exact: each stream yields exactly `approx_len`
/// instructions.
#[test]
fn event_lengths_are_exact() {
    for seed in workload_seeds(3) {
        let w = small_workload(seed);
        for ev in w.events().iter().take(3) {
            let got = record_stream(&mut *w.actual_stream(ev.id), usize::MAX);
            assert_eq!(got.len() as u64, ev.approx_len, "seed {seed}");
        }
    }
}

/// The predictor never panics and keeps sane statistics on completely
/// arbitrary branch streams.
#[test]
fn predictor_survives_arbitrary_streams() {
    let mut meta = Xoshiro256pp::seed_from_u64(0x3091_0004);
    for case in 0..16 {
        let seed = meta.below(10_000);
        let n = meta.range(100, 1_000) as usize;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut bp = BranchPredictor::new(BranchConfig::pentium_m(), ContextPolicy::SeparatePir);
        for _ in 0..n {
            let pc = Addr::new(rng.below(1 << 20) << 2);
            let target = Addr::new(rng.below(1 << 20) << 2);
            let instr = match rng.below(5) {
                0 => Instr::cond_branch(pc, rng.chance(0.5), target),
                1 => Instr::indirect(pc, target),
                2 => Instr::indirect_call(pc, target),
                3 => Instr::call(pc, target),
                _ => Instr::ret(pc, target),
            };
            let ctx = match rng.below(3) {
                0 => PredictorContext::Normal,
                1 => PredictorContext::Esp1,
                _ => PredictorContext::Esp2,
            };
            bp.predict_and_update(ctx, &instr);
            if rng.chance(0.05) {
                bp.promote_event();
            }
            if rng.chance(0.02) {
                bp.clear_ras();
            }
        }
        let total: u64 = [PredictorContext::Normal, PredictorContext::Esp1, PredictorContext::Esp2]
            .iter()
            .map(|&c| bp.stats(c).total())
            .sum();
        assert_eq!(total, n as u64, "case {case} seed {seed}");
    }
}
