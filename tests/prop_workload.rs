//! Property tests on the workload generator and the predictor's
//! robustness under arbitrary inputs.

use event_sneak_peek::branch::{BranchConfig, BranchPredictor, ContextPolicy, PredictorContext};
use event_sneak_peek::trace::{record_stream, Instr, Workload};
use event_sneak_peek::types::{Addr, Rng as _, Xoshiro256pp};
use event_sneak_peek::workload::{GeneratedWorkload, WorkloadParams};
use proptest::prelude::*;

fn small_workload(seed: u64) -> GeneratedWorkload {
    let mut p = WorkloadParams::web_default();
    p.target_instructions = 30_000;
    p.mean_event_len = 3_000;
    p.code_footprint_bytes = 256 * 1024;
    GeneratedWorkload::generate(p, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any seed: streams regenerate identically, control flow is
    /// consistent, and forked cursors continue exactly like the original.
    #[test]
    fn walks_are_deterministic_and_consistent(seed in 0u64..10_000) {
        let w = small_workload(seed);
        let id = w.events()[0].id;
        let a = record_stream(&mut *w.actual_stream(id), 2_000);
        let b = record_stream(&mut *w.actual_stream(id), 2_000);
        prop_assert_eq!(&a, &b);
        // Control-flow consistency.
        for pair in a.windows(2) {
            prop_assert_eq!(pair[0].next_pc(), pair[1].pc);
        }
        // Fork mid-stream and compare continuations.
        let mut s = w.actual_stream(id);
        record_stream(&mut *s, 500);
        let rest_fork = {
            let mut forked = s.fork();
            record_stream(&mut *forked, 500)
        };
        let rest_orig = record_stream(&mut *s, 500);
        prop_assert_eq!(rest_orig, rest_fork);
    }

    /// Speculative views match actual views exactly up to the declared
    /// divergence point for every event.
    #[test]
    fn speculative_views_match_prefix(seed in 0u64..10_000) {
        let w = small_workload(seed);
        for ev in w.events().iter().take(4) {
            let detail = &w.schedule().details()[ev.id.index() as usize];
            let a = record_stream(&mut *w.actual_stream(ev.id), 1_500);
            let s = record_stream(&mut *w.speculative_stream(ev.id), 1_500);
            let check = match detail.diverge_at {
                None => a.len(),
                Some(at) => (at as usize).min(a.len()),
            };
            prop_assert_eq!(&a[..check], &s[..check]);
        }
    }

    /// Event budgets are exact: each stream yields exactly `approx_len`
    /// instructions.
    #[test]
    fn event_lengths_are_exact(seed in 0u64..10_000) {
        let w = small_workload(seed);
        for ev in w.events().iter().take(3) {
            let got = record_stream(&mut *w.actual_stream(ev.id), usize::MAX);
            prop_assert_eq!(got.len() as u64, ev.approx_len);
        }
    }

    /// The predictor never panics and keeps sane statistics on completely
    /// arbitrary branch streams.
    #[test]
    fn predictor_survives_arbitrary_streams(seed in 0u64..10_000, n in 100usize..1_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut bp = BranchPredictor::new(BranchConfig::pentium_m(), ContextPolicy::SeparatePir);
        for _ in 0..n {
            let pc = Addr::new(rng.below(1 << 20) << 2);
            let target = Addr::new(rng.below(1 << 20) << 2);
            let instr = match rng.below(5) {
                0 => Instr::cond_branch(pc, rng.chance(0.5), target),
                1 => Instr::indirect(pc, target),
                2 => Instr::indirect_call(pc, target),
                3 => Instr::call(pc, target),
                _ => Instr::ret(pc, target),
            };
            let ctx = match rng.below(3) {
                0 => PredictorContext::Normal,
                1 => PredictorContext::Esp1,
                _ => PredictorContext::Esp2,
            };
            bp.predict_and_update(ctx, &instr);
            if rng.chance(0.05) {
                bp.promote_event();
            }
            if rng.chance(0.02) {
                bp.clear_ras();
            }
        }
        let total: u64 = [PredictorContext::Normal, PredictorContext::Esp1, PredictorContext::Esp2]
            .iter()
            .map(|&c| bp.stats(c).total())
            .sum();
        prop_assert_eq!(total, n as u64);
    }
}
