//! Design-space walk: which pieces of ESP buy what?
//!
//! Reproduces the spirit of Figs. 10 and 12 on one workload: starting
//! from naive ESP (no cachelets, no lists) and adding one mechanism at a
//! time, then sweeping the branch-predictor context policies.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use event_sneak_peek::prelude::*;
use event_sneak_peek::stats::{improvement_pct, Table};

fn main() {
    let workload = BenchmarkProfile::facebook().scaled(300_000).build(7);
    let base = Simulator::new(SimConfig::base()).run(&workload);

    println!("facebook profile, {} events; all speedups vs the no-prefetch baseline\n", workload.events().len());

    let mut t = Table::with_headers(&["mechanism set", "speedup %", "I-MPKI", "mispredict %"]);
    let steps: Vec<(&str, SimConfig)> = vec![
        ("baseline + NL", SimConfig::next_line()),
        ("naive ESP + NL (no cachelets/lists)", SimConfig::naive_esp_nl()),
        ("+ cachelets & I-list", SimConfig::esp_i_nl()),
        ("+ B-list ahead-training", SimConfig::esp_ib_nl()),
        ("+ D-list (full ESP)", SimConfig::esp_nl()),
    ];
    for (label, cfg) in steps {
        let r = Simulator::new(cfg).run(&workload);
        t.push_row(vec![
            label.to_string(),
            format!("{:.1}", improvement_pct(base.busy_cycles(), r.busy_cycles())),
            format!("{:.1}", r.l1i_mpki()),
            format!("{:.2}", r.mispredict_rate_pct()),
        ]);
    }
    println!("{t}");

    let mut t = Table::with_headers(&["branch-context policy", "mispredict %"]);
    let policies: Vec<(&str, SimConfig)> = vec![
        ("no ESP at all", SimConfig::next_line()),
        ("shared PIR + tables (no extra HW)", SimConfig::esp_bp_shared()),
        ("separate PIR", SimConfig::esp_bp_separate_context()),
        ("separate PIR + full table replicas", SimConfig::esp_bp_separate_tables()),
        ("separate PIR + B-list (shipping ESP)", SimConfig::esp_nl()),
    ];
    for (label, cfg) in policies {
        let r = Simulator::new(cfg).run(&workload);
        t.push_row(vec![label.to_string(), format!("{:.2}", r.mispredict_rate_pct())]);
    }
    println!("{t}");
    println!(
        "hardware added by the shipping design: {:.1} KB (Fig. 8)",
        event_sneak_peek::core::total_added_bytes() as f64 / 1024.0
    );
}
