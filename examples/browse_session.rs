//! Domain scenario: a full multi-site "browsing afternoon".
//!
//! Simulates every one of the paper's seven web applications back to
//! back, the way §5 describes the benchmark sessions, and prints a
//! per-site report plus the session-wide harmonic means — the same
//! aggregation the paper's figures use.
//!
//! ```text
//! cargo run --release --example browse_session [scale]
//! ```

use event_sneak_peek::prelude::*;
use event_sneak_peek::stats::{harmonic_mean_improvement, improvement_pct, Table};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250_000);

    let mut table = Table::with_headers(&[
        "site",
        "events",
        "base CPI",
        "ESP CPI",
        "speedup %",
        "I-MPKI",
        "ESP I-MPKI",
        "windows",
        "pre-exec %",
    ]);
    let mut improvements = Vec::new();

    for profile in BenchmarkProfile::all() {
        let workload = profile.scaled(scale).build(1);
        let base = Simulator::new(SimConfig::next_line()).run(&workload);
        let esp = Simulator::new(SimConfig::esp_nl()).run(&workload);
        let improvement = improvement_pct(base.busy_cycles(), esp.busy_cycles());
        improvements.push(improvement);
        table.push_row(vec![
            profile.name().to_string(),
            workload.events().len().to_string(),
            format!("{:.2}", 1.0 / base.ipc()),
            format!("{:.2}", 1.0 / esp.ipc()),
            format!("{:.1}", improvement),
            format!("{:.1}", base.l1i_mpki()),
            format!("{:.1}", esp.l1i_mpki()),
            esp.esp.windows.to_string(),
            format!("{:.1}", esp.extra_instr_pct()),
        ]);
    }

    println!("browsing session at ~{scale} instructions per site, ESP+NL vs NL:\n");
    println!("{table}");
    println!(
        "session harmonic-mean ESP speedup over the next-line baseline: {:.1}%",
        harmonic_mean_improvement(&improvements)
    );
    println!("(the paper reports 16% over its NL+stride baseline, §6.1)");
}
