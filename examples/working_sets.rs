//! Cachelet sizing study (the Fig. 13 methodology) on one workload.
//!
//! Runs ESP with the jump-ahead depth probe extended to 8 and working-set
//! tracking on, then prints how many instruction cache lines events touch
//! in normal execution versus in each ESP mode — the measurement that
//! justified 5.5 KB + 0.5 KB cachelets and the depth-2 limit.
//!
//! ```text
//! cargo run --release --example working_sets
//! ```

use event_sneak_peek::core::percentile;
use event_sneak_peek::prelude::*;
use event_sneak_peek::stats::Table;

fn main() {
    let workload = BenchmarkProfile::gmaps().scaled(400_000).build(11);
    let report = Simulator::new(SimConfig::esp_depth_probe()).run(&workload);
    let ws = report.working_sets.expect("depth probe collects working sets");

    let mut t = Table::with_headers(&["mode", "samples", "max", "p95", "p85", "p75"]);
    let mut row = |label: String, samples: &[usize]| {
        t.push_row(vec![
            label,
            samples.len().to_string(),
            percentile(samples, 100.0).to_string(),
            percentile(samples, 95.0).to_string(),
            percentile(samples, 85.0).to_string(),
            percentile(samples, 75.0).to_string(),
        ]);
    };
    row("Normal".into(), &ws.normal_i);
    for (d, samples) in ws.by_depth_i.iter().enumerate() {
        row(format!("ESP{}", d + 1), samples);
    }
    println!("gmaps profile — instruction lines touched per (event, mode):\n");
    println!("{t}");

    let esp1_p95 = percentile(&ws.by_depth_i[0], 95.0);
    let esp2_p95 = percentile(&ws.by_depth_i[1], 95.0);
    println!(
        "ESP-1 p95 working set: {} lines ({} B); the paper provisions 88 lines (5.5 KB).",
        esp1_p95,
        esp1_p95 * 64
    );
    println!(
        "ESP-2 p95 working set: {} lines ({} B); the paper provisions 8 lines (0.5 KB).",
        esp2_p95,
        esp2_p95 * 64
    );
    let deep: usize = ws.by_depth_i[2..].iter().flatten().sum();
    println!("total lines ever touched beyond depth 2: {deep} — why ESP stops at two jump-aheads.");
}
