//! Quickstart: simulate one benchmark under the baseline and under ESP,
//! and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use event_sneak_peek::prelude::*;

fn main() {
    // A scaled-down "amazon" browsing session: event lengths follow the
    // paper's Fig. 6 ratio, the total is capped for a quick run.
    let workload = BenchmarkProfile::amazon().scaled(300_000).build(42);
    println!(
        "workload: {} events, {} instructions",
        workload.events().len(),
        workload.schedule().total_instructions()
    );

    // The strongest conventional baseline: next-line + stride prefetching.
    let baseline = Simulator::new(SimConfig::next_line_stride()).run(&workload);
    // The same machine with the Event Sneak Peek architecture on top.
    let esp = Simulator::new(SimConfig::esp_nl()).run(&workload);

    println!("\n                {:>12} {:>12}", "NL + stride", "ESP + NL");
    println!(
        "busy cycles     {:>12} {:>12}",
        baseline.busy_cycles(),
        esp.busy_cycles()
    );
    println!("IPC             {:>12.3} {:>12.3}", baseline.ipc(), esp.ipc());
    println!(
        "L1-I MPKI       {:>12.1} {:>12.1}",
        baseline.l1i_mpki(),
        esp.l1i_mpki()
    );
    println!(
        "L1-D miss %     {:>12.2} {:>12.2}",
        baseline.l1d_miss_rate_pct(),
        esp.l1d_miss_rate_pct()
    );
    println!(
        "mispredict %    {:>12.2} {:>12.2}",
        baseline.mispredict_rate_pct(),
        esp.mispredict_rate_pct()
    );
    println!(
        "\nESP speedup: {:.1}%  (pre-executed {:.1}% extra instructions in {} stall windows)",
        esp_stats_improvement(&baseline, &esp),
        esp.extra_instr_pct(),
        esp.esp.windows
    );
}

fn esp_stats_improvement(base: &RunReport, esp: &RunReport) -> f64 {
    event_sneak_peek::stats::improvement_pct(base.busy_cycles(), esp.busy_cycles())
}
