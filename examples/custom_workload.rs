//! Bring-your-own workload: two ways to feed the simulator something
//! other than the seven built-in profiles.
//!
//! 1. Tune [`WorkloadParams`] — every knob of the synthetic generator is
//!    public (here: an IoT-style sensor hub with tiny, bursty events).
//! 2. Implement the [`Workload`] trait directly over hand-built traces,
//!    using the trace codec to dump what runs.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use event_sneak_peek::prelude::*;
use event_sneak_peek::trace::{codec, EventRecord, EventStream, VecEventStream};
use event_sneak_peek::types::EventKindId;
use event_sneak_peek::workload::WorkloadParams;

fn main() {
    tuned_generator();
    hand_built_workload();
}

/// Part 1: an "IoT sensor hub" profile — thousands of tiny events with a
/// small firmware image, posted in dense bursts.
fn tuned_generator() {
    let mut p = WorkloadParams::web_default();
    p.target_instructions = 200_000;
    p.mean_event_len = 900; // tiny handlers
    p.event_len_sigma = 0.8;
    p.event_kinds = 6;
    p.code_footprint_bytes = 192 * 1024; // small firmware
    p.heap_per_event = 2 * 1024;
    p.mean_burst = 10.0; // sensor readings arrive in volleys
    p.utilization = 0.95;
    let workload = event_sneak_peek::workload::GeneratedWorkload::generate(p, 2026);

    let base = Simulator::new(SimConfig::next_line()).run(&workload);
    let esp = Simulator::new(SimConfig::esp_nl()).run(&workload);
    println!(
        "sensor hub: {} events of ~{} instrs; ESP speedup over NL: {:.1}% \
         (pre-executed {:.1}%)",
        workload.events().len(),
        workload.schedule().total_instructions() / workload.events().len() as u64,
        event_sneak_peek::stats::improvement_pct(base.busy_cycles(), esp.busy_cycles()),
        esp.extra_instr_pct(),
    );
}

/// Part 2: a hand-built two-event workload over explicit traces, plus a
/// codec dump of the first event.
fn hand_built_workload() {
    struct TinyWorkload {
        records: Vec<EventRecord>,
        traces: Vec<Vec<event_sneak_peek::trace::Instr>>,
    }

    impl Workload for TinyWorkload {
        fn events(&self) -> &[EventRecord] {
            &self.records
        }
        fn actual_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
            Box::new(VecEventStream::new(self.traces[id.index() as usize].clone()))
        }
        fn speculative_stream(&self, id: EventId) -> Box<dyn EventStream + '_> {
            // Perfectly predictable events: speculation never diverges.
            self.actual_stream(id)
        }
    }

    use event_sneak_peek::trace::Instr;
    let make_trace = |base: u64| -> Vec<Instr> {
        let mut v = Vec::new();
        for i in 0..400u64 {
            let pc = Addr::new(base + i * 4);
            v.push(match i % 5 {
                1 => Instr::load(pc, Addr::new(0x9000_0000 + base + i * 64), false),
                3 => Instr::cond_branch(pc, false, Addr::new(base)),
                _ => Instr::alu(pc),
            });
        }
        v
    };
    let record = |idx: u64, pc: u64| EventRecord {
        id: EventId::new(idx),
        kind: EventKindId::new(0),
        handler_pc: Addr::new(pc),
        arg_addr: Addr::new(0x9000_0000),
        approx_len: 400,
        post_time: Cycle::ZERO,
        order_mispredicted: false,
    };
    let w = TinyWorkload {
        records: vec![record(0, 0x40_0000), record(1, 0x80_0000)],
        traces: vec![make_trace(0x40_0000), make_trace(0x80_0000)],
    };

    let report = Simulator::new(SimConfig::esp_nl()).run(&w);
    println!(
        "hand-built: {} events, {} cycles, {} ESP windows",
        report.events_run, report.total_cycles, report.esp.windows
    );

    // Dump the first event's trace through the codec and read it back.
    let mut buf = Vec::new();
    let mut s = w.actual_stream(EventId::new(0));
    codec::write_stream(&mut *s, 5, &mut buf).expect("in-memory write cannot fail");
    println!("first five trace lines:\n{}", String::from_utf8_lossy(&buf));
    let replay = codec::read_stream(buf.as_slice()).expect("roundtrip");
    assert_eq!(replay.remaining().len(), 5);
}
