#!/usr/bin/env bash
# Reproduces the committed BENCH_repro.json throughput record.
#
#   ./scripts/bench.sh            # the documented scale-600000 run
#   ./scripts/bench.sh --repeat 5 # extra repetitions on a noisy host
#
# The bench runs the full evaluation matrix (9 families x 29 configs =
# 261 simulations: the paper's 7 profiles plus serverasync and iotfsm)
# several times: pass 1 cold on one thread (generate +
# materialise + simulate), pass 2 warm on all cores (arena reused;
# skipped with a JSON note when only one core is visible), pass 3 warm
# in statistical-sampling mode with a sampled-vs-exact CPI error
# cross-check (per-profile table under "sampled".per_profile), pass 3b
# warm with learned fast-forwarding on top of sampling (--learn-* to
# override the model; throughput, speedups vs exact and vs plain
# sampling, error envelope, skip fraction, and fallback counters land
# under "learned"). Pass 4 measures the second parallelism axis: each
# profile's single baseline run chunked over --intra-threads workers
# with deterministic merge (docs/PARALLELISM.md); its chunk/conflict
# accounting and serial-vs-chunked single-run throughput land under
# "intra" (with a per-family conflict table under "intra".per_profile).
# A final trace-I/O pass exports every family to .espt files, clears
# the arena memo, re-imports them, and records the wall times under
# "trace_io" next to the generate/materialise phase seconds the import
# path replaces (docs/TRACE_FORMAT.md). Exact and sampled throughput both land in
# BENCH_repro.json, as sims/s and as MIPS (instructions simulated —
# retired plus speculative — per wall-second; the sampled block reports
# *effective* MIPS and is tagged with the scale its error was measured
# at, since sampling error shrinks as more periods fit the workload).
# Each pass is best-of-N (default 3) because the work
# is deterministic, so the minimum is the least-disturbed measurement;
# see docs/PERFORMANCE.md for the protocol. Extra arguments are
# forwarded to `repro` after the defaults, so they win.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p esp-bench
exec ./target/release/repro --scale 600000 --seed 42 --force "$@" bench
