#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md) plus the parallel-runner
# determinism check. Run from anywhere inside the repository; the build
# is fully offline (no crates.io dependencies anywhere in the workspace).
#
#   ./scripts/verify.sh
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== lint: cargo clippy --all-targets (warnings denied) =="
cargo clippy --all-targets --quiet -- -D warnings

echo "== correctness: oracle matrix + seeded fuzz smoke (esp-check) =="
cargo run --release -q -p esp-bench --bin repro -- --scale 30000 --fuzz 8 check

echo "== determinism: parallel runner == sequential simulation =="
cargo test -q --release -p esp-bench --test determinism

echo "== observability: conservation + thread-count invariance =="
cargo test -q --release -p esp-bench --test observability

echo "== docs: cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "verify: OK"
