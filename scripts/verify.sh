#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md) plus the parallel-runner
# determinism check. Run from anywhere inside the repository; the build
# is fully offline (no crates.io dependencies anywhere in the workspace).
#
#   ./scripts/verify.sh
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== lint: cargo clippy --all-targets (warnings denied) =="
cargo clippy --all-targets --quiet -- -D warnings

echo "== correctness: oracle matrix + seeded fuzz smoke (esp-check) =="
# check also fuzzes the ESPT trace decoder (--fuzz-espt, default 500
# structural mutations; docs/TRACE_FORMAT.md).
cargo run --release -q -p esp-bench --bin repro -- --scale 30000 --fuzz 8 check

echo "== trace conformance: golden fixtures + import == generate (ESPT) =="
cargo test -q --release --test espt_conformance
cargo test -q --release -p esp-bench --test trace_import_equivalence

echo "== determinism: parallel runner == sequential simulation =="
cargo test -q --release -p esp-bench --test determinism

echo "== intra-run: chunk-parallel merge == serial bytes (reports + traces) =="
cargo test -q --release -p esp-bench --test intra_determinism

echo "== packed arena: bit-equivalence vs regenerative streams =="
cargo test -q --release -p esp-bench --test packed_equivalence

echo "== sampling: accuracy + thread-count determinism (esp-sample) =="
cargo test -q --release -p esp-bench --test sampling_error

echo "== learned fast-forward: accuracy + non-vacuous skipping + determinism (esp-learn) =="
cargo test -q --release -p esp-bench --test learned_ff_error

echo "== observability: conservation + thread-count invariance =="
cargo test -q --release -p esp-bench --test observability

echo "== docs: cargo doc --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== timing smoke (informational, non-gating) =="
# A small single-repetition bench so every verify run prints a
# throughput number next to the correctness results, compared against
# the committed BENCH_repro.json record. Small scale and a shared host
# make this noisy, hence non-gating; the committed record comes from
# ./scripts/bench.sh (see docs/PERFORMANCE.md). Runs in a scratch
# directory so the committed BENCH_repro.json is untouched.
smoke_dir="$(mktemp -d)"
( cd "$smoke_dir" &&
  "$OLDPWD/target/release/repro" --scale 60000 --seed 42 --repeat 1 bench &&
  if command -v python3 >/dev/null; then
    python3 - "$OLDPWD/BENCH_repro.json" <<'PY'
import json, sys
d = json.load(open("BENCH_repro.json"))
nt = (f"{d['sims_per_sec_nt']:.1f} ({d['threads_nt']} threads, warm)"
      if "sims_per_sec_nt" in d else d.get("nt_note", "no N-thread pass"))
s = d["sampled"]
mips = f", {d['mips_1t']:.1f} MIPS" if "mips_1t" in d else ""
print(f"  sims/sec: {d['sims_per_sec_1t']:.1f} (1 thread, cold){mips} "
      f"at scale {d['scale']}")
print(f"  sampled: {s['sims_per_sec']:.1f} sims/sec, simulate speedup "
      f"{s['simulate_speedup_vs_exact']:.2f}x, max CPI error "
      f"{s['max_cpi_error_pct']:.1f}% (small scale -- error shrinks with scale; "
      f"the gated accuracy test runs at 2.4M)")
l = d.get("learned")
if l:
    print(f"  learned: {l['sims_per_sec']:.1f} sims/sec, simulate speedup "
          f"{l['simulate_speedup_vs_exact']:.2f}x vs exact "
          f"({l['simulate_speedup_vs_sampled']:.2f}x vs sampled), max CPI error "
          f"{l['max_cpi_error_pct']:.1f}%, skip fraction {l['skip_fraction']:.2f}, "
          f"fallback rate {l['fallback_rate']:.3f} (small scale -- few stretches "
          f"to skip; the gated accuracy test runs at 2.4M)")
# Intra-run (single-run) scaling pass: informational. Conflict
# accounting is deterministic; the wall-time ratio is only a scaling
# number on a multi-core host (docs/PARALLELISM.md).
i = d.get("intra")
if i:
    print(f"  intra: {i['chunks']} chunks over {i['runs']} runs "
          f"({i['accepted']} accepted, {i['repaired']} repaired, "
          f"conflict rate {i['conflict_rate']:.2f}), "
          f"serial {i['seconds_1t']:.2f}s vs {i['threads']}-worker "
          f"{i['seconds_nt']:.2f}s")
try:
    rec = json.load(open(sys.argv[1]))
except (OSError, ValueError):
    rec = None
if rec:
    rmips = f", {rec['mips_1t']:.1f} MIPS" if "mips_1t" in rec else ""
    print(f"  committed record: {rec['sims_per_sec_1t']:.1f} sims/sec "
          f"(1 thread, cold){rmips} at scale {rec['scale']}")
    # sims/s is not comparable across scales (smaller sims finish
    # faster); MIPS is the scale-portable metric, though per-sim fixed
    # costs still weigh more at the small smoke scale.
    if "mips_1t" in d and "mips_1t" in rec:
        drift = 100.0 * (d["mips_1t"] / rec["mips_1t"] - 1.0)
        print(f"  MIPS drift vs record: {drift:+.0f}% -- expect negative "
              f"at this smaller smoke scale and on slower/noisier hosts; "
              f"informational only, never gating. Regenerate the record "
              f"with ./scripts/bench.sh on a quiet host.")
else:
    print("  (no committed BENCH_repro.json record to compare against)")
PY
  else
    cat BENCH_repro.json
  fi ) || echo "  (timing smoke failed -- ignored)"
rm -rf "$smoke_dir"

echo "verify: OK"
